"""Tests for the reordering property tables, validated *semantically*:

every table entry claiming associativity / asscom is checked by actually
evaluating both sides on concrete relations; every negative entry is
backed by a concrete counterexample search.
"""

import pytest

from repro.algebra import operators as ops
from repro.algebra.expressions import Attr
from repro.algebra.relation import Relation
from repro.conflict.tables import assoc, l_asscom, r_asscom
from repro.rewrites.pushdown import OpKind

B, N, T, E, K = (
    OpKind.INNER,
    OpKind.LEFT_SEMI,
    OpKind.LEFT_ANTI,
    OpKind.LEFT_OUTER,
    OpKind.FULL_OUTER,
)

_APPLY = {
    B: ops.join,
    N: ops.semijoin,
    T: ops.antijoin,
    E: ops.left_outerjoin,
    K: ops.full_outerjoin,
}


def relations():
    """Small relations with hits, misses and duplicates on both sides."""
    e1 = Relation.from_tuples(["a1"], [(0,), (1,), (1,), (7,)])
    e2 = Relation.from_tuples(["a2", "b2"], [(0, 0), (1, 1), (2, 1), (8, 8)])
    e3 = Relation.from_tuples(["a3"], [(0,), (1,), (1,), (9,)])
    return e1, e2, e3


P12 = Attr("a1").eq(Attr("a2"))
P23 = Attr("b2").eq(Attr("a3"))
P13 = Attr("a1").eq(Attr("a3"))

EQ_ATTRS_1 = frozenset({"a1"})
EQ_ATTRS_2 = frozenset({"a2", "b2"})


def _result_attrs(op, left_attrs, right_attrs):
    if op in (N, T):
        return left_attrs
    return left_attrs + right_attrs


class TestAssocSemantics:
    """assoc(a,b): (e1 a e2) b e3 == e1 a (e2 b e3), p_b over e2/e3."""

    @pytest.mark.parametrize("op_a", [B, N, T, E, K], ids=lambda o: o.value)
    @pytest.mark.parametrize("op_b", [B, N, T, E, K], ids=lambda o: o.value)
    def test_table_entry_matches_semantics(self, op_a, op_b):
        e1, e2, e3 = relations()
        # (e1 a e2) keeps e2 attrs only for B/E/K — otherwise the LHS of the
        # assoc identity is not even well-formed, and the table says False.
        if op_a in (N, T):
            assert not assoc(op_a, op_b, P12, P23, EQ_ATTRS_1, EQ_ATTRS_2)
            return
        lhs = _APPLY[op_b](_APPLY[op_a](e1, e2, P12), e3, P23)
        rhs = _APPLY[op_a](e1, _APPLY[op_b](e2, e3, P23), P12)
        claimed = assoc(op_a, op_b, P12, P23, EQ_ATTRS_1, EQ_ATTRS_2)
        if claimed:
            assert lhs == rhs, f"assoc({op_a.value},{op_b.value}) claimed but differs"
        else:
            # The table is allowed to be conservative; for the classic
            # counterexample pairs we assert genuine inequality.
            if (op_a, op_b) in [(B, K), (E, B), (K, B), (E, K)]:
                assert lhs != rhs


class TestLAsscomSemantics:
    """l_asscom(a,b): (e1 a e2) b e3 == (e1 b e3) a e2, p_b over e1/e3."""

    @pytest.mark.parametrize("op_a", [B, N, T, E, K], ids=lambda o: o.value)
    @pytest.mark.parametrize("op_b", [B, N, T, E, K], ids=lambda o: o.value)
    def test_table_entry_matches_semantics(self, op_a, op_b):
        e1, e2, e3 = relations()
        lhs = _APPLY[op_b](_APPLY[op_a](e1, e2, P12), e3, P13)
        rhs = _APPLY[op_a](_APPLY[op_b](e1, e3, P13), e2, P12)
        claimed = l_asscom(op_a, op_b, P12, P13, EQ_ATTRS_1, EQ_ATTRS_2)
        if claimed:
            assert lhs == rhs, f"l_asscom({op_a.value},{op_b.value}) claimed but differs"
        else:
            if (op_a, op_b) in [(B, K), (N, K), (T, K), (K, B), (K, N), (K, T)]:
                assert lhs != rhs


class TestRAsscomSemantics:
    """r_asscom(a,b): e1 a (e2 b e3) == e2 b (e1 a e3), p_a over e1/e3."""

    @pytest.mark.parametrize("op_a", [B, N, T, E, K], ids=lambda o: o.value)
    @pytest.mark.parametrize("op_b", [B, N, T, E, K], ids=lambda o: o.value)
    def test_table_entry_matches_semantics(self, op_a, op_b):
        e1, e2, e3 = relations()
        claimed = r_asscom(op_a, op_b, P13, P23, EQ_ATTRS_1, EQ_ATTRS_2)
        # Both rewritten forms are only well-formed when the needed join
        # attributes survive: a semijoin/antijoin on either operator hides
        # e3's attributes from the outer predicate.  The table must say
        # False for all those combinations.
        if op_a in (N, T) or op_b in (N, T):
            assert not claimed
            return
        lhs = _APPLY[op_a](e1, _APPLY[op_b](e2, e3, P23), P13)
        rhs = _APPLY[op_b](e2, _APPLY[op_a](e1, e3, P13), P23)
        if claimed:
            assert lhs == rhs, f"r_asscom({op_a.value},{op_b.value}) claimed but differs"


class TestGroupjoinFrozen:
    def test_groupjoin_has_no_reordering_properties(self):
        for other in [B, N, T, E, K]:
            assert not assoc(OpKind.GROUPJOIN, other)
            assert not assoc(other, OpKind.GROUPJOIN)
            assert not l_asscom(OpKind.GROUPJOIN, other)
            assert not l_asscom(other, OpKind.GROUPJOIN)
            assert not r_asscom(OpKind.GROUPJOIN, other)
            assert not r_asscom(other, OpKind.GROUPJOIN)


class TestNullRejectionConditions:
    def test_conditional_entry_needs_predicates(self):
        # assoc(E,E) requires p_b to reject NULLs on A(e2).
        assert not assoc(E, E)  # no predicates supplied -> condition fails
        assert assoc(E, E, P12, P23, EQ_ATTRS_1, EQ_ATTRS_2)

    def test_condition_fails_for_non_rejecting_predicate(self):
        from repro.algebra.expressions import IsNull

        weird = IsNull(Attr("b2"))  # TRUE on NULL input: not null-rejecting
        assert not assoc(E, E, P12, weird, EQ_ATTRS_1, EQ_ATTRS_2)

    def test_assoc_kk_requires_both(self):
        assert assoc(K, K, P12, P23, EQ_ATTRS_1, EQ_ATTRS_2)
        from repro.algebra.expressions import IsNull

        assert not assoc(K, K, IsNull(Attr("a1")), P23, EQ_ATTRS_1, EQ_ATTRS_2)
