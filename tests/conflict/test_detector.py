"""Tests for the conflict detector (TES computation, rules, applicability)."""

from repro.aggregates import count_star, sum_
from repro.aggregates.vector import AggItem, AggVector
from repro.algebra.expressions import Attr
from repro.conflict import detect
from repro.query.spec import JoinEdge, Query, RelationInfo
from repro.query.tree import TreeLeaf, TreeNode
from repro.rewrites.pushdown import OpKind


def rel(i):
    name = f"r{i}"
    return RelationInfo(name, (f"{name}.x", f"{name}.y"), 100.0)


def chain_query(ops_):
    """r0 -op0- r1 -op1- r2 ... left-deep tree."""
    n = len(ops_) + 1
    relations = [rel(i) for i in range(n)]
    edges = []
    tree = TreeLeaf(0)
    for i, op in enumerate(ops_):
        gj = (
            AggVector([AggItem(f"gj{i}", sum_(f"r{i + 1}.y"))])
            if op is OpKind.GROUPJOIN
            else None
        )
        edges.append(
            JoinEdge(i, op, Attr(f"r{i}.x").eq(Attr(f"r{i + 1}.x")), 0.1, gj)
        )
        tree = TreeNode(i, tree, TreeLeaf(i + 1))
    visible = "r0.y"
    return Query(relations, edges, tree, (visible,), AggVector([AggItem("c", count_star())]))


class TestDetection:
    def test_inner_chain_has_no_rules(self):
        query = chain_query([OpKind.INNER, OpKind.INNER])
        annotated, graph = detect(query)
        assert all(not a.rules for a in annotated)
        assert graph.n == 3

    def test_tes_equals_ses_for_simple_edges(self):
        query = chain_query([OpKind.INNER, OpKind.INNER])
        annotated, _ = detect(query)
        by_id = {a.edge_id: a for a in annotated}
        assert by_id[0].l_tes == 0b001 and by_id[0].r_tes == 0b010
        assert by_id[1].l_tes == 0b010 and by_id[1].r_tes == 0b100

    def test_groupjoin_frozen_tes(self):
        query = chain_query([OpKind.INNER, OpKind.GROUPJOIN])
        annotated, _ = detect(query)
        gj = [a for a in annotated if a.op is OpKind.GROUPJOIN][0]
        assert gj.l_tes == 0b011  # whole left subtree
        assert gj.r_tes == 0b100

    def test_inner_above_outerjoin_gets_rules(self):
        # (r0 LEFT-OUTER r1) INNER r2: assoc(E, B) is false -> a rule exists
        # forbidding the inner join from being applied to r1 alone.
        query = chain_query([OpKind.LEFT_OUTER, OpKind.INNER])
        annotated, _ = detect(query)
        inner = [a for a in annotated if a.edge_id == 1][0]
        assert inner.rules  # conflict rules present

    def test_applicability_blocks_invalid_reordering(self):
        query = chain_query([OpKind.LEFT_OUTER, OpKind.INNER])
        annotated, _ = detect(query)
        inner = [a for a in annotated if a.edge_id == 1][0]
        # Joining {r1} with {r2} would push the inner join below the
        # outerjoin: the conflict rule (from !assoc(E,B)) demands r0 present.
        assert not inner.applicable(0b010, 0b100)
        assert inner.applicable(0b011, 0b100)

    def test_full_outerjoins_associate(self):
        # (r0 K r1) K r2 with equality predicates: assoc holds, so joining
        # {r1} with {r2} first is allowed.
        query = chain_query([OpKind.FULL_OUTER, OpKind.FULL_OUTER])
        annotated, _ = detect(query)
        second = [a for a in annotated if a.edge_id == 1][0]
        assert second.applicable(0b010, 0b100)

    def test_orientation_enforced_for_tes(self):
        query = chain_query([OpKind.LEFT_OUTER])
        annotated, _ = detect(query)
        edge = annotated[0]
        assert edge.applicable(0b01, 0b10)
        assert not edge.applicable(0b10, 0b01)


class TestRuleSemantics:
    def test_rule_satisfaction(self):
        from repro.conflict.detector import ConflictRule

        rule = ConflictRule(antecedent=0b010, consequent=0b001)
        assert rule.satisfied_by(0b100)  # antecedent untouched
        assert rule.satisfied_by(0b011)  # consequent contained
        assert not rule.satisfied_by(0b010)  # touched but incomplete

    def test_hyperedge_export(self):
        query = chain_query([OpKind.INNER])
        annotated, graph = detect(query)
        assert len(graph.edges) == 1
        assert graph.edges[0].label == 0
