"""Async-tier ``POST /stats_update``: drift broadcast across shards.

Every worker shard owns a private catalog, so a drift must reach all of
them atomically-enough: the front broadcasts one STATS_UPDATE frame per
shard and merges the replies (any shard failing fails the request —
half-applied drift would leave shards pricing the same tables
differently).  The endpoint deliberately takes no admission slot: the
control plane must land even when the data plane is saturated with 429s.
"""

import pytest

from repro.asyncserver import AsyncPlanServer, AsyncServerConfig
from repro.server.client import ServerClient, ServerError

SQL = (
    "SELECT ns.n_name, count(*) AS cnt FROM nation ns "
    "JOIN supplier s ON ns.n_nationkey = s.s_nationkey GROUP BY ns.n_name"
)
SQL_OTHER = "SELECT count(*) FROM region GROUP BY r_name"


@pytest.fixture(scope="module")
def server():
    config = AsyncServerConfig(
        port=0, shards=2, cache_capacity=64, snapshot_band_width=1.0
    )
    with AsyncPlanServer(config) as running:
        yield running


@pytest.fixture()
def client(server):
    with ServerClient(port=server.port) as c:
        yield c


class TestBroadcast:
    def test_drift_reaches_every_shard_and_merges(self, client):
        before = client.optimize(SQL, include_plan=False)
        body = client._request(
            "POST", "/stats_update",
            {"table": "supplier", "cardinality_factor": 4.0},
        )
        assert body["_status"] == 200
        assert body["shards"] == 2
        assert body["relation"] == "supplier"
        assert body["cardinality_ratio"] == 4.0
        assert body["marked_stale"] >= 1
        assert isinstance(body["revalidated_inline"], dict)

        # The shard revalidated inline (or will in an idle gap): the
        # entry must end up re-priced under the 4x statistics.
        after = client.optimize(SQL, include_plan=False)
        assert after["cost"] > before["cost"]

    def test_untouched_tables_keep_their_plans(self, client):
        before = client.optimize(SQL_OTHER, include_plan=False)
        client._request(
            "POST", "/stats_update",
            {"table": "orders", "cardinality_factor": 2.0},
        )
        after = client.optimize(SQL_OTHER, include_plan=False)
        assert after["cost"] == before["cost"]

    def test_merged_stats_expose_lifecycle_counters(self, client):
        plans = client.stats()["plans"]
        for counter in ("stale_served", "recosted", "replanned"):
            assert counter in plans

    def test_unknown_table_is_404_on_every_shard(self, client):
        with pytest.raises(ServerError) as excinfo:
            client._request(
                "POST", "/stats_update",
                {"table": "nowhere", "cardinality_factor": 2.0},
            )
        assert excinfo.value.status == 404

    @pytest.mark.parametrize(
        "body",
        [
            {"table": "supplier"},
            {"table": "supplier", "cardinality_factor": 2.0, "cardinality": 5.0},
            {"table": "supplier", "cardinality_factor": -3.0},
            {"table": None, "cardinality_factor": 2.0},
        ],
    )
    def test_invalid_bodies_are_400(self, client, body):
        with pytest.raises(ServerError) as excinfo:
            client._request("POST", "/stats_update", body)
        assert excinfo.value.status == 400
