"""End-to-end tests for the async serving tier.

Boots real servers (event-loop front + worker subprocesses) on
ephemeral ports and drives them with the ordinary
:class:`~repro.server.client.ServerClient` — the async tier must be
protocol-compatible with the sync one.  Covers the full paper-serving
loop: optimize/explain/batch/stats/healthz, shard routing, crash
restart, and the drain → snapshot → restart → warm-hit cycle.
"""

import json
import os
import signal
import time

import pytest

from repro.asyncserver import AsyncPlanServer, AsyncServerConfig
from repro.server.client import ServerClient, ServerError

SQL = (
    "SELECT nation.n_name, count(*) AS cnt FROM nation, supplier "
    "WHERE nation.n_nationkey = supplier.s_nationkey GROUP BY nation.n_name"
)
SQL_RENAMED = (
    "SELECT n2.n_name, count(*) AS cnt FROM nation n2 "
    "JOIN supplier sup ON n2.n_nationkey = sup.s_nationkey GROUP BY n2.n_name"
)
SQL_SMALL = "SELECT count(*) FROM region GROUP BY r_name"
BAD_TABLE = "SELECT count(*) FROM nowhere GROUP BY x"


@pytest.fixture(scope="module")
def server():
    config = AsyncServerConfig(port=0, shards=2, cache_capacity=64)
    with AsyncPlanServer(config) as running:
        yield running


@pytest.fixture()
def client(server):
    with ServerClient(port=server.port) as c:
        yield c


class TestHealthz:
    def test_ok_while_serving(self, client):
        body = client.healthz()
        assert body["status"] == "ok"
        assert body["mode"] == "async"
        assert body["shards"] == 2
        assert body["_status"] == 200


class TestOptimize:
    def test_round_trip_with_plan_tree(self, client):
        body = client.optimize(SQL)
        assert body["strategy"] == "ea-prune"
        assert body["cost"] > 0
        assert body["plan"]["op"] in ("groupby", "project", "map")
        assert body["shard"] in (0, 1)

    def test_cache_hit_on_repeat(self, client):
        client.optimize(SQL)
        body = client.optimize(SQL)
        assert body["cache_hit"] is True
        assert body["elapsed_seconds"] == 0.0

    def test_renamed_isomorphic_query_hits_across_spellings(self, client):
        """Rename-stable fingerprints route both spellings to the same
        shard, where the owning cache rebinds the plan to the new names."""
        client.optimize(SQL)
        body = client.optimize(SQL_RENAMED, include_plan=True)
        assert body["cache_hit"] is True
        assert "n2" in json.dumps(body["plan"])

    def test_same_sql_always_same_shard(self, client):
        shards = {client.optimize(SQL, include_plan=False)["shard"] for _ in range(6)}
        assert len(shards) == 1

    def test_parse_error_is_400(self, client):
        with pytest.raises(ServerError) as excinfo:
            client.optimize(BAD_TABLE)
        assert excinfo.value.status == 400
        assert excinfo.value.code == "parse_error"

    def test_bad_config_is_400(self, client):
        with pytest.raises(ServerError) as excinfo:
            client.optimize(SQL, strategy="no-such-strategy")
        assert excinfo.value.status == 400
        assert excinfo.value.code == "bad_config"

    def test_missing_sql_is_400(self, client):
        with pytest.raises(ServerError) as excinfo:
            client.optimize("")
        assert excinfo.value.status == 400

    def test_unknown_path_is_404(self, client):
        with pytest.raises(ServerError) as excinfo:
            client._request("POST", "/nope", {"sql": SQL})
        assert excinfo.value.status == 404

    def test_wrong_method_is_405(self, client):
        with pytest.raises(ServerError) as excinfo:
            client._request("GET", "/optimize")
        assert excinfo.value.status == 405


class TestExplain:
    def test_explain_returns_rendered_plan(self, client):
        body = client.explain(SQL)
        assert "⋈" in body["explain"]
        assert body["cost"] > 0


class TestBatch:
    def test_mixed_batch_merges_shard_slices_in_order(self, client):
        body = client.batch([SQL, SQL_SMALL, BAD_TABLE, SQL_RENAMED])
        assert body["total"] == 4
        assert body["succeeded"] == 3
        assert body["failed"] == 1
        assert [item["index"] for item in body["items"]] == [0, 1, 2, 3]
        failed = body["items"][2]
        assert failed["stage"] == "parse"
        assert body["cache_hits"] >= 1  # SQL was cached by earlier tests

    def test_batch_requires_list(self, client):
        with pytest.raises(ServerError) as excinfo:
            client._request("POST", "/batch", {"queries": "not-a-list"})
        assert excinfo.value.status == 400


class TestStats:
    def test_aggregated_fields(self, client):
        client.optimize(SQL)
        stats = client.stats()
        assert stats["mode"] == "async"
        assert stats["shards"] == 2
        assert set(stats["persistence"]) == {"loaded", "saved", "rejected"}
        assert stats["engine"]["requested"] == "indexed"
        assert stats["plans"]["served"] >= 1
        assert stats["plans"]["by_engine"]  # effective engine counters
        assert stats["engine"]["effective"] == stats["plans"]["by_engine"]
        assert len(stats["shard_detail"]) == 2
        for detail in stats["shard_detail"]:
            assert detail["shard"] in (0, 1)
            assert detail["pid"] > 0
            assert set(detail["persistence"]) == {"loaded", "saved", "rejected"}
        assert stats["route_cache"]["hits"] + stats["route_cache"]["misses"] > 0

    def test_request_metrics_present(self, client):
        client.optimize(SQL)
        stats = client.stats()
        assert stats["requests"]["/optimize"]["count"] >= 1
        assert stats["requests"]["/optimize"]["p50_ms"] is not None


class TestCrashRestart:
    def test_worker_crash_is_survived_and_restarted(self, server, client):
        stats = client.stats()
        victim_shard = client.optimize(SQL, include_plan=False)["shard"]
        victim_pid = next(
            d["pid"] for d in stats["shard_detail"] if d["shard"] == victim_shard
        )
        os.kill(victim_pid, signal.SIGKILL)
        deadline = time.monotonic() + 30.0
        body = None
        while time.monotonic() < deadline:
            try:
                body = client.optimize(SQL, include_plan=False)
                break
            except ServerError as error:
                # The crash instant answers 500 worker_pool_failure and
                # the restart-backoff window answers 503
                # shard_unavailable; the supervisor restarts the shard
                # out-of-band either way.
                assert error.code in ("worker_pool_failure", "shard_unavailable")
                time.sleep(0.2)
        assert body is not None, "shard never came back after crash"
        assert body["shard"] == victim_shard
        stats = client.stats()
        assert stats["restarts"] >= 1
        restarted = next(
            d for d in stats["shard_detail"] if d["shard"] == victim_shard
        )
        assert restarted["pid"] != victim_pid


class TestPersistenceLifecycle:
    """The drain → snapshot → restart → warm-hit cycle, plus refusals."""

    def test_drain_snapshot_restart_serves_warm_hit(self, tmp_path):
        cache_dir = str(tmp_path / "shards")
        os.makedirs(cache_dir)
        config = AsyncServerConfig(port=0, shards=2, cache_dir=cache_dir)

        with AsyncPlanServer(config) as first:
            with ServerClient(port=first.port) as c:
                cold = c.optimize(SQL)
                assert cold["cache_hit"] is False
                explain_before = c.explain(SQL)["explain"]
            assert first.drain() is True
        files = sorted(os.listdir(cache_dir))
        assert files == ["shard-000-of-002.plancache", "shard-001-of-002.plancache"]

        with AsyncPlanServer(config) as second:
            with ServerClient(port=second.port) as c:
                stats = c.stats()
                assert stats["persistence"]["loaded"] >= 1
                assert stats["persistence"]["rejected"] == 0
                warm = c.optimize(SQL)
                # first request after restart: served from the snapshot,
                # not re-optimized
                assert warm["cache_hit"] is True
                assert c.explain(SQL)["explain"] == explain_before
            second.drain()

    def test_tampered_snapshot_is_rejected_on_boot(self, tmp_path):
        cache_dir = str(tmp_path / "shards")
        os.makedirs(cache_dir)
        config = AsyncServerConfig(port=0, shards=1, cache_dir=cache_dir)

        with AsyncPlanServer(config) as first:
            with ServerClient(port=first.port) as c:
                c.optimize(SQL)
            first.drain()
        path = os.path.join(cache_dir, "shard-000-of-001.plancache")
        raw = bytearray(open(path, "rb").read())
        raw[-1] ^= 0xFF
        with open(path, "wb") as handle:
            handle.write(bytes(raw))

        with AsyncPlanServer(config) as second:
            with ServerClient(port=second.port) as c:
                stats = c.stats()
                assert stats["persistence"]["loaded"] == 0
                assert stats["persistence"]["rejected"] == 1
                body = c.optimize(SQL)  # cold start still serves
                assert body["cache_hit"] is False

    def test_resharded_snapshot_files_are_not_reused(self, tmp_path):
        """shard-i-of-N files must not warm-start an M-shard server: the
        fingerprint → shard mapping changed, so entries could land on a
        non-owning shard."""
        cache_dir = str(tmp_path / "shards")
        os.makedirs(cache_dir)

        with AsyncPlanServer(
            AsyncServerConfig(port=0, shards=1, cache_dir=cache_dir)
        ) as first:
            with ServerClient(port=first.port) as c:
                c.optimize(SQL)
            first.drain()

        with AsyncPlanServer(
            AsyncServerConfig(port=0, shards=2, cache_dir=cache_dir)
        ) as second:
            with ServerClient(port=second.port) as c:
                stats = c.stats()
                assert stats["persistence"]["loaded"] == 0
                body = c.optimize(SQL)
                assert body["cache_hit"] is False
            second.drain()
