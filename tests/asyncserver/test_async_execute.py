"""``POST /execute`` on the async tier: shard-routed execution.

One worker shard provisions ``tpch-sf0.001`` at boot; the front routes
``/execute`` by the SQL's structural fingerprint exactly like
``/optimize``, so the executing shard is the one whose cache shard owns
the plan.
"""

import pytest

from repro.asyncserver import AsyncPlanServer, AsyncServerConfig
from repro.server import ServerClient, ServerError

SQL = (
    "SELECT ns.n_name, count(*) AS cnt FROM nation ns "
    "JOIN supplier s ON ns.n_nationkey = s.s_nationkey GROUP BY ns.n_name"
)


@pytest.fixture(scope="module")
def server():
    config = AsyncServerConfig(
        port=0, shards=1, cache_capacity=64, dataset="tpch-sf0.001"
    )
    with AsyncPlanServer(config) as running:
        yield running


@pytest.fixture()
def client(server):
    with ServerClient(port=server.port) as c:
        yield c


class TestAsyncExecute:
    def test_round_trip_reports_shard(self, client):
        body = client.execute(SQL, limit=None)
        assert body["executor"] == "columnar"
        assert body["shard"] == 0
        assert body["row_count"] == len(body["rows"]) > 0

    def test_backends_agree_through_the_frame_protocol(self, client):
        columnar = client.execute(SQL, limit=None)
        interpreter = client.execute(SQL, executor="interpreter", limit=None)
        assert sorted(map(tuple, columnar["rows"])) == sorted(
            map(tuple, interpreter["rows"])
        )

    def test_limit_truncates(self, client):
        body = client.execute(SQL, limit=1)
        assert body["row_count"] == 1

    def test_bad_executor_is_400(self, client):
        with pytest.raises(ServerError) as excinfo:
            client.execute(SQL, executor="gpu")
        assert excinfo.value.status == 400
        assert excinfo.value.code == "bad_executor"

    def test_stats_merge_shard_executions(self, client):
        client.execute(SQL)
        stats = client.stats()
        executions = stats["executions"]
        assert executions["count"] >= 1
        assert executions["by_executor"].get("columnar", 0) >= 1
        assert executions["rows_returned"] >= 1
        # The per-shard detail carries each worker's own counters.
        assert stats["shard_detail"][0]["executions"]["count"] >= 1


class TestAsyncExecuteWithoutDataset:
    def test_409_when_no_dataset_loaded(self):
        config = AsyncServerConfig(port=0, shards=1, cache_capacity=8)
        with AsyncPlanServer(config) as server:
            with ServerClient(port=server.port) as client:
                with pytest.raises(ServerError) as excinfo:
                    client.execute(SQL)
                assert excinfo.value.status == 409
                assert excinfo.value.code == "no_dataset"

    def test_bad_spec_rejected_at_construction(self):
        with pytest.raises(ValueError, match="dataset spec"):
            AsyncServerConfig(dataset="nonsense-spec")
