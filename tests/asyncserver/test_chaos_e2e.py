"""Chaos tests for the async tier: crash loops, hangs, poisoned batches,
and corrupt snapshots, injected via :mod:`repro.chaos` markers.

Each test boots a real server (event-loop front + worker subprocesses)
with fault injection armed (``REPRO_CHAOS=1`` — workers inherit the
environment) and asserts the robustness contract: faults stay scoped to
the shard (and request) that triggered them, supervision restarts or
isolates the broken shard, and clean traffic keeps flowing.
"""

import os
import time

import pytest

from repro import chaos
from repro.asyncserver import AsyncPlanServer, AsyncServerConfig
from repro.server.client import ServerClient, ServerError

CLEAN_SQL = "SELECT count(*) AS cnt FROM region GROUP BY r_name"
# Structurally distinct statements: fingerprints are rename-stable, so
# shard spread requires different shapes, not different aliases.
CLEAN_CANDIDATES = [
    CLEAN_SQL,
    "SELECT count(*) AS cnt FROM nation, supplier "
    "WHERE nation.n_nationkey = supplier.s_nationkey",
    "SELECT count(*) AS cnt FROM customer, orders "
    "WHERE customer.c_custkey = orders.o_custkey",
    "SELECT count(*) AS cnt FROM part, partsupp "
    "WHERE part.p_partkey = partsupp.ps_partkey",
    "SELECT count(*) AS cnt FROM orders GROUP BY o_orderstatus",
    "SELECT count(*) AS cnt FROM supplier GROUP BY s_nationkey",
]
CRASH_SQL = (
    "SELECT count(*) AS cnt FROM nation chaos_crash, supplier "
    "WHERE chaos_crash.n_nationkey = supplier.s_nationkey"
)
HANG_SQL = (
    "SELECT count(*) AS cnt FROM nation chaos_hang, region "
    "WHERE chaos_hang.n_regionkey = region.r_regionkey"
)
DROP_SQL = (
    "SELECT count(*) AS cnt FROM customer chaos_drop, nation "
    "WHERE chaos_drop.c_nationkey = nation.n_nationkey"
)


def _wait_for(predicate, budget=30.0, interval=0.05, what="condition"):
    deadline = time.monotonic() + budget
    while time.monotonic() < deadline:
        if predicate():
            return
        time.sleep(interval)
    raise AssertionError(f"timed out waiting for {what}")


def _shard_state(server, shard):
    return server.service.supervisor.shard_states()[shard]


def _other_shard_sql(server, shard):
    """A clean statement the front routes to a shard other than *shard*."""
    for sql in CLEAN_CANDIDATES:
        if server.service.route(sql) != shard:
            return sql
    pytest.skip("all candidate statements landed on the faulty shard")


class TestChaosHelpers:
    def test_disarmed_by_default(self, monkeypatch):
        monkeypatch.delenv("REPRO_CHAOS", raising=False)
        assert not chaos.enabled()
        assert chaos.planning_delay(["chaos_slow_500"]) is None
        assert not chaos.should_drop(b"chaos_drop")

    def test_falsy_values_disarm(self, monkeypatch):
        for value in ("0", "false", "no", ""):
            monkeypatch.setenv("REPRO_CHAOS", value)
            assert not chaos.enabled()

    def test_planning_delay_parses_millis(self, monkeypatch):
        monkeypatch.setenv("REPRO_CHAOS", "1")
        assert chaos.planning_delay(["nation", "chaos_slow_250"]) == 0.25
        assert chaos.planning_delay(["chaos_slow"]) == 0.1
        assert chaos.planning_delay(["nation", "region"]) is None

    def test_should_drop_needs_marker(self, monkeypatch):
        monkeypatch.setenv("REPRO_CHAOS", "1")
        assert chaos.should_drop(b'{"sql": "... chaos_drop ..."}')
        assert not chaos.should_drop(b'{"sql": "SELECT 1"}')

    @pytest.mark.parametrize("mode", ["truncate", "corrupt"])
    def test_damage_snapshot_modes(self, monkeypatch, tmp_path, mode):
        monkeypatch.setenv("REPRO_CHAOS", "1")
        monkeypatch.setenv("REPRO_CHAOS_SNAPSHOT", mode)
        path = tmp_path / "snap.bin"
        pristine = bytes(range(256)) * 8
        path.write_bytes(pristine)
        assert chaos.damage_snapshot(str(path)) == mode
        damaged = path.read_bytes()
        assert damaged != pristine
        if mode == "truncate":
            assert len(damaged) == len(pristine) // 2

    def test_damage_snapshot_needs_both_gates(self, monkeypatch, tmp_path):
        path = tmp_path / "snap.bin"
        path.write_bytes(b"x" * 64)
        monkeypatch.delenv("REPRO_CHAOS", raising=False)
        monkeypatch.setenv("REPRO_CHAOS_SNAPSHOT", "truncate")
        assert chaos.damage_snapshot(str(path)) is None
        monkeypatch.setenv("REPRO_CHAOS", "1")
        monkeypatch.delenv("REPRO_CHAOS_SNAPSHOT", raising=False)
        assert chaos.damage_snapshot(str(path)) is None
        assert path.read_bytes() == b"x" * 64


@pytest.fixture()
def chaos_env(monkeypatch):
    monkeypatch.setenv("REPRO_CHAOS", "1")


class TestCrashBreaker:
    def test_crash_loop_opens_breaker_while_other_shard_serves(self, chaos_env):
        config = AsyncServerConfig(
            port=0,
            shards=2,
            breaker_threshold=2,
            restart_backoff_base_seconds=0.05,
            breaker_cooldown_seconds=120.0,
        )
        with AsyncPlanServer(config) as server:
            crash_shard = server.service.route(CRASH_SQL)
            clean_sql = _other_shard_sql(server, crash_shard)
            with ServerClient(port=server.port, timeout=60.0) as client:
                # Crash 1: the request dies with the worker (500), the
                # supervisor respawns the shard after a short backoff.
                with pytest.raises(ServerError) as exc_info:
                    client.optimize(CRASH_SQL)
                assert exc_info.value.status == 500
                _wait_for(
                    lambda: _shard_state(server, crash_shard)["alive"],
                    what="shard respawn after first crash",
                )
                # Crash 2 reaches the breaker threshold: the shard is
                # isolated instead of entering a restart hot-loop.
                with pytest.raises(ServerError) as exc_info:
                    client.optimize(CRASH_SQL)
                assert exc_info.value.status == 500
                _wait_for(
                    lambda: _shard_state(server, crash_shard)["breaker_open"],
                    what="circuit breaker opening",
                )
                # The broken shard's fingerprints now answer 503 without
                # touching a worker...
                with pytest.raises(ServerError) as exc_info:
                    client.optimize(CRASH_SQL)
                assert exc_info.value.status == 503
                assert exc_info.value.code == "shard_unavailable"
                # ...while the healthy shard keeps serving.
                body = client.optimize(clean_sql)
                assert body["degraded"] is False
                stats = client.stats()
                state = stats["supervision"][crash_shard]
                assert state["breaker_open"] is True
                assert state["restarts"] >= 2
                assert stats["supervision"][1 - crash_shard]["breaker_open"] is False
            server.close()


class TestHangReap:
    def test_hung_worker_times_out_and_is_reaped(self, chaos_env):
        config = AsyncServerConfig(
            port=0,
            shards=1,
            request_timeout_seconds=0.5,  # hard timeout = 2.5s
            restart_backoff_base_seconds=0.05,
        )
        with AsyncPlanServer(config) as server:
            with ServerClient(port=server.port, timeout=60.0) as client:
                started = time.perf_counter()
                with pytest.raises(ServerError) as exc_info:
                    client.optimize(HANG_SQL)
                elapsed = time.perf_counter() - started
                assert exc_info.value.status == 504
                # The front answered at the hard timeout, not after the
                # injected hour-long hang.
                assert elapsed < 30.0
                # The wedged worker was killed and respawned...
                _wait_for(
                    lambda: _shard_state(server, 0)["alive"]
                    and _shard_state(server, 0)["restarts"] >= 1,
                    what="wedged worker reap + respawn",
                )
                # ...and the fresh worker serves clean traffic.
                body = client.optimize(CLEAN_SQL)
                assert body["degraded"] is False
            server.close()

    def test_dropped_frame_times_out_and_is_reaped(self, chaos_env):
        """A swallowed response frame is indistinguishable from a hang
        at the front: hard timeout, 504, reap, restart."""
        config = AsyncServerConfig(
            port=0,
            shards=1,
            request_timeout_seconds=0.5,
            restart_backoff_base_seconds=0.05,
        )
        with AsyncPlanServer(config) as server:
            with ServerClient(port=server.port, timeout=60.0) as client:
                with pytest.raises(ServerError) as exc_info:
                    client.optimize(DROP_SQL)
                assert exc_info.value.status == 504
                _wait_for(
                    lambda: _shard_state(server, 0)["alive"]
                    and _shard_state(server, 0)["restarts"] >= 1,
                    what="reap + respawn after dropped frame",
                )
                assert client.optimize(CLEAN_SQL)["degraded"] is False
            server.close()


class TestPoisonedBatch:
    def test_crash_in_batch_does_not_poison_other_shards(self, chaos_env):
        config = AsyncServerConfig(
            port=0,
            shards=2,
            restart_backoff_base_seconds=0.05,
        )
        with AsyncPlanServer(config) as server:
            crash_shard = server.service.route(CRASH_SQL)
            clean_sql = _other_shard_sql(server, crash_shard)
            with ServerClient(port=server.port, timeout=60.0) as client:
                report = client.batch([CRASH_SQL, clean_sql])
                by_index = {item["index"]: item for item in report["items"]}
                # The poisoned item failed with the crashed shard...
                assert "error" in by_index[0]
                assert by_index[0]["stage"] == "optimize"
                # ...but the other shard's item planned normally.
                assert "error" not in by_index[1]
                assert by_index[1]["cost"] > 0
                assert report["failed"] == 1
                assert report["succeeded"] == 1
                # The crashed shard comes back and serves again.
                _wait_for(
                    lambda: _shard_state(server, crash_shard)["alive"],
                    what="shard respawn after batch crash",
                )
                follow_up = _other_shard_sql(server, 1 - crash_shard)
                assert client.optimize(follow_up)["degraded"] is False
            server.close()


class TestSnapshotChaos:
    @pytest.mark.parametrize("mode", ["truncate", "corrupt"])
    def test_damaged_snapshot_is_refused_and_server_cold_starts(
        self, chaos_env, monkeypatch, tmp_path, mode
    ):
        monkeypatch.setenv("REPRO_CHAOS_SNAPSHOT", mode)
        cache_dir = str(tmp_path / "plancache")
        config = AsyncServerConfig(port=0, shards=1, cache_dir=cache_dir)
        # First life: populate the shard cache, then drain — the worker
        # snapshots and the armed chaos hook damages the file on disk.
        with AsyncPlanServer(config) as first:
            with ServerClient(port=first.port, timeout=60.0) as client:
                client.optimize(CLEAN_SQL)
            first.drain()
        snapshot_files = os.listdir(cache_dir)
        assert len(snapshot_files) == 1
        # Second life: the warm start must refuse the damaged snapshot
        # (checksum validation) and cold-start rather than serve from it.
        with AsyncPlanServer(config) as second:
            with ServerClient(port=second.port, timeout=60.0) as client:
                stats = client.stats()
                assert stats["persistence"]["rejected"] >= 1
                assert stats["persistence"]["loaded"] == 0
                body = client.optimize(CLEAN_SQL)
                assert body["cache_hit"] is False  # nothing warm-started
            second.close()
