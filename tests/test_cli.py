"""Tests for the ``python -m repro`` command-line EXPLAIN tool."""

import pytest

from repro.__main__ import build_argument_parser, main

SQL = (
    "SELECT ns.n_name, count(*) AS cnt FROM nation ns "
    "JOIN supplier s ON ns.n_nationkey = s.s_nationkey GROUP BY ns.n_name"
)


class TestArgumentParser:
    def test_defaults(self):
        args = build_argument_parser().parse_args([SQL])
        assert args.strategy == "ea-prune"
        assert args.factor == 1.03
        assert args.scale_factor == 1.0

    def test_strategy_choices(self):
        with pytest.raises(SystemExit):
            build_argument_parser().parse_args(["--strategy", "magic", SQL])


class TestMain:
    def test_explain(self, capsys):
        assert main([SQL]) == 0
        out = capsys.readouterr().out
        assert "Cout=" in out
        assert "Γ" in out or "Π" in out  # a grouping or its elimination

    def test_compare(self, capsys):
        assert main(["--compare", SQL]) == 0
        out = capsys.readouterr().out
        for strategy in ("dphyp", "ea-all", "ea-prune", "h1", "h2"):
            assert strategy in out

    def test_compare_prints_the_minimum_cost_winner(self, capsys):
        assert main(["--compare", SQL]) == 0
        out = capsys.readouterr().out
        winner_lines = [line for line in out.splitlines() if line.startswith("winner: ")]
        assert len(winner_lines) == 1
        # eager aggregation beats lazy DPhyp on this query
        assert "winner: dphyp" not in out

    def test_compare_renders_the_winning_plan(self, capsys):
        from repro.api import PlannerSession

        assert main(["--compare", SQL]) == 0
        out = capsys.readouterr().out
        comparison = PlannerSession.tpch().sql(SQL).optimize_all_strategies()
        # the rendered tree is the minimum-cost strategy's, not a
        # hardcoded one: the eager plan groups *below* the join
        assert comparison.best.explain() in out
        lazy = comparison["dphyp"].explain()
        if lazy != comparison.best.explain():
            assert lazy not in out

    def test_cost_model_option(self, capsys):
        assert main(["--cost-model", "cout", SQL]) == 0
        assert "Cout=" in capsys.readouterr().out

    def test_strategy_option(self, capsys):
        assert main(["--strategy", "h2", "--factor", "1.1", SQL]) == 0
        assert "strategy=h2" in capsys.readouterr().out

    def test_scale_factor(self, capsys):
        assert main(["--scale-factor", "0.1", SQL]) == 0

    def test_bad_sql_reports_error(self, capsys):
        assert main(["SELECT FROM nowhere"]) == 1
        assert "error:" in capsys.readouterr().err

    def test_unknown_table_reports_error(self, capsys):
        assert main(["SELECT count(*) FROM nowhere GROUP BY x"]) == 1
        assert "error:" in capsys.readouterr().err

    def test_explicit_explain_subcommand(self, capsys):
        assert main(["explain", SQL]) == 0
        assert "Cout=" in capsys.readouterr().out


class TestBatchSubcommand:
    def test_random_workload_warms_cache(self, capsys):
        assert main([
            "batch", "--count", "6", "--relations", "3", "--unique", "2",
            "--workers", "1", "--repeat", "2",
        ]) == 0
        out = capsys.readouterr().out
        assert "batch 1:" in out and "batch 2:" in out
        assert "cache hits=6 (100%)" in out  # second batch fully cached
        assert "cache: 2/" in out

    def test_no_cache_flag(self, capsys):
        assert main([
            "batch", "--count", "4", "--relations", "3", "--workers", "1",
            "--repeat", "1", "--no-cache",
        ]) == 0
        out = capsys.readouterr().out
        assert "cache=off" in out
        assert "cache:" not in out
        assert "deduped=" in out  # in-batch reuse is not a cache hit
        assert "cache hits" not in out

    def test_sql_file_workload(self, tmp_path, capsys):
        sql_file = tmp_path / "queries.sql"
        sql_file.write_text("# comment\n" + SQL + "\n\n" + SQL + "\n")
        assert main([
            "batch", "--sql-file", str(sql_file), "--workers", "1", "--repeat", "1",
        ]) == 0
        out = capsys.readouterr().out
        assert "2 queries" in out
        assert "optimized=1" in out  # identical statements dedup to one run

    def test_missing_sql_file_reports_error(self, capsys):
        assert main(["batch", "--sql-file", "/nonexistent.sql"]) == 1
        assert "error:" in capsys.readouterr().err

    def test_unparsable_workload_line_is_located(self, tmp_path, capsys):
        sql_file = tmp_path / "queries.sql"
        sql_file.write_text("# header\n" + SQL + "\nSELECT FROM nowhere\n")
        assert main(["batch", "--sql-file", str(sql_file)]) == 1
        err = capsys.readouterr().err
        assert f"{sql_file}:3:" in err


class TestMixedSqlWorkload:
    EXISTS_SQL = (
        "SELECT n.n_name, count(*) AS cnt FROM nation n WHERE EXISTS "
        "(SELECT * FROM supplier s WHERE s.s_nationkey = n.n_nationkey) "
        "GROUP BY n.n_name"
    )

    def test_explain_exists_query(self, capsys):
        assert main([self.EXISTS_SQL]) == 0
        out = capsys.readouterr().out
        assert "Cout=" in out
        assert "⋉" in out  # the semijoin survives into the rendered plan

    def test_explain_right_join(self, capsys):
        assert main([
            "SELECT n.n_name, count(*) AS cnt FROM supplier s "
            "RIGHT JOIN nation n ON s.s_nationkey = n.n_nationkey "
            "GROUP BY n.n_name"
        ]) == 0
        assert "⟕" in capsys.readouterr().out

    def test_explain_reserved_keyword_is_an_error(self, capsys):
        assert main(["SELECT count(*) FROM nation n ORDER BY n.n_name"]) == 1
        assert "reserved but not yet supported" in capsys.readouterr().err

    def test_batch_mixed_sql(self, capsys):
        assert main([
            "batch", "--mixed-sql", "--count", "6", "--unique", "3",
            "--workers", "1", "--repeat", "2", "--seed", "7",
        ]) == 0
        out = capsys.readouterr().out
        assert "batch 2:" in out
        assert "cache hits=6 (100%)" in out  # second pass fully cached
