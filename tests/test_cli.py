"""Tests for the ``python -m repro`` command-line EXPLAIN tool."""

import pytest

from repro.__main__ import build_argument_parser, main

SQL = (
    "SELECT ns.n_name, count(*) AS cnt FROM nation ns "
    "JOIN supplier s ON ns.n_nationkey = s.s_nationkey GROUP BY ns.n_name"
)


class TestArgumentParser:
    def test_defaults(self):
        args = build_argument_parser().parse_args([SQL])
        assert args.strategy == "ea-prune"
        assert args.factor == 1.03
        assert args.scale_factor == 1.0

    def test_strategy_choices(self):
        with pytest.raises(SystemExit):
            build_argument_parser().parse_args(["--strategy", "magic", SQL])


class TestMain:
    def test_explain(self, capsys):
        assert main([SQL]) == 0
        out = capsys.readouterr().out
        assert "Cout=" in out
        assert "Γ" in out or "Π" in out  # a grouping or its elimination

    def test_compare(self, capsys):
        assert main(["--compare", SQL]) == 0
        out = capsys.readouterr().out
        for strategy in ("dphyp", "ea-all", "ea-prune", "h1", "h2"):
            assert strategy in out

    def test_strategy_option(self, capsys):
        assert main(["--strategy", "h2", "--factor", "1.1", SQL]) == 0
        assert "strategy=h2" in capsys.readouterr().out

    def test_scale_factor(self, capsys):
        assert main(["--scale-factor", "0.1", SQL]) == 0

    def test_bad_sql_reports_error(self, capsys):
        assert main(["SELECT FROM nowhere"]) == 1
        assert "error:" in capsys.readouterr().err

    def test_unknown_table_reports_error(self, capsys):
        assert main(["SELECT count(*) FROM nowhere GROUP BY x"]) == 1
        assert "error:" in capsys.readouterr().err
