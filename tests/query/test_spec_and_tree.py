"""Tests for the query specification and initial operator trees."""

import pytest

from repro.aggregates import count_star, sum_
from repro.aggregates.vector import AggItem, AggVector
from repro.algebra.expressions import Attr
from repro.query.spec import JoinEdge, Query, RelationInfo
from repro.query.tree import TreeLeaf, TreeNode, tree_depth, tree_leaves, tree_operators
from repro.rewrites.pushdown import OpKind


def rel(i, card=100.0, distinct=None, keys=()):
    name = f"r{i}"
    attrs = (f"{name}.id", f"{name}.g", f"{name}.a")
    return RelationInfo(name, attrs, card, distinct or {}, keys)


def simple_query(op=OpKind.INNER, keys0=(), keys1=()):
    relations = [
        RelationInfo("r0", ("r0.id", "r0.g", "r0.a"), 100.0, {}, keys0),
        RelationInfo("r1", ("r1.id", "r1.g", "r1.a"), 200.0, {}, keys1),
    ]
    gj = AggVector([AggItem("gj1", sum_("r1.a"))]) if op is OpKind.GROUPJOIN else None
    edges = [JoinEdge(0, op, Attr("r0.id").eq(Attr("r1.id")), 0.01, gj)]
    tree = TreeNode(0, TreeLeaf(0), TreeLeaf(1))
    group_by = ("r0.g",)
    aggregates = AggVector([AggItem("cnt", count_star()), AggItem("s", sum_("r0.a"))])
    return Query(relations, edges, tree, group_by, aggregates)


class TestTree:
    def test_tree_leaves_bitset(self):
        tree = TreeNode(0, TreeLeaf(0), TreeNode(1, TreeLeaf(2), TreeLeaf(1)))
        assert tree_leaves(tree) == 0b111
        assert tree_leaves(tree.left) == 0b001

    def test_tree_operators(self):
        tree = TreeNode(0, TreeLeaf(0), TreeNode(1, TreeLeaf(2), TreeLeaf(1)))
        assert [node.edge_id for node in tree_operators(tree)] == [0, 1]

    def test_tree_depth(self):
        assert tree_depth(TreeLeaf(0)) == 0
        tree = TreeNode(0, TreeLeaf(0), TreeNode(1, TreeLeaf(2), TreeLeaf(1)))
        assert tree_depth(tree) == 2


class TestRelationInfo:
    def test_distinct_count_caps_at_cardinality(self):
        info = rel(0, card=50.0, distinct={"r0.g": 80.0})
        assert info.distinct_count("r0.g") == 50.0

    def test_distinct_count_defaults_to_cardinality(self):
        info = rel(0, card=50.0)
        assert info.distinct_count("r0.a") == 50.0

    def test_keys_declared_only(self):
        info = rel(0, card=10.0, distinct={"r0.a": 10.0})
        assert info.all_keys() == ()
        assert not info.duplicate_free
        keyed = rel(0, keys=(frozenset({"r0.id"}),))
        assert keyed.all_keys() == (frozenset({"r0.id"}),)
        assert keyed.duplicate_free


class TestJoinEdge:
    def test_groupjoin_requires_vector(self):
        with pytest.raises(ValueError):
            JoinEdge(0, OpKind.GROUPJOIN, Attr("a").eq(Attr("b")), 0.5)

    def test_selectivity_validation(self):
        with pytest.raises(ValueError):
            JoinEdge(0, OpKind.INNER, Attr("a").eq(Attr("b")), 0.0)
        with pytest.raises(ValueError):
            JoinEdge(0, OpKind.INNER, Attr("a").eq(Attr("b")), 1.5)


class TestQuery:
    def test_vertex_lookup(self):
        q = simple_query()
        assert q.vertex_of("r0.g") == 0
        assert q.vertex_of("r1.a") == 1

    def test_duplicate_attribute_rejected(self):
        shared = RelationInfo("x", ("dup.a",), 1.0)
        shared2 = RelationInfo("y", ("dup.a",), 1.0)
        with pytest.raises(ValueError):
            Query(
                [shared, shared2],
                [JoinEdge(0, OpKind.INNER, Attr("dup.a").eq(Attr("dup.a")), 0.5)],
                TreeNode(0, TreeLeaf(0), TreeLeaf(1)),
                (),
                AggVector([AggItem("c", count_star())]),
            )

    def test_unknown_group_attr_rejected(self):
        with pytest.raises(ValueError):
            relations = [rel(0), rel(1)]
            Query(
                relations,
                [JoinEdge(0, OpKind.INNER, Attr("r0.id").eq(Attr("r1.id")), 0.5)],
                TreeNode(0, TreeLeaf(0), TreeLeaf(1)),
                ("nope.g",),
                AggVector([AggItem("c", count_star())]),
            )

    def test_vertices_of_groupjoin_output_is_edge_mask(self):
        q = simple_query(op=OpKind.GROUPJOIN)
        assert q.vertices_of(["gj1"]) == 0b11

    def test_relation_attrs(self):
        q = simple_query()
        assert "r0.g" in q.relation_attrs(0b01)
        assert "r1.g" not in q.relation_attrs(0b01)

    def test_needed_above_includes_group_and_join_attrs(self):
        q = simple_query()
        needed = q.needed_above(0b01)
        assert "r0.g" in needed  # grouping attribute
        assert "r0.id" in needed  # crossing join predicate
        assert "r0.a" not in needed  # only aggregated, not needed raw

    def test_needed_above_full_set_is_group_only(self):
        q = simple_query()
        assert q.needed_above(0b11) == frozenset({"r0.g"})

    def test_normalization_exposed(self):
        from repro.aggregates import avg

        relations = [rel(0), rel(1)]
        q = Query(
            relations,
            [JoinEdge(0, OpKind.INNER, Attr("r0.id").eq(Attr("r1.id")), 0.5)],
            TreeNode(0, TreeLeaf(0), TreeLeaf(1)),
            ("r0.g",),
            AggVector([AggItem("m", avg("r0.a"))]),
        )
        assert q.normalized.vector.names() == ("m#s", "m#c")

    def test_groupjoin_scaling_requirements(self):
        q = simple_query(op=OpKind.GROUPJOIN)
        reqs = q.groupjoin_scaling_requirements()
        assert reqs == [(0b10, True)]  # sum is duplicate sensitive
