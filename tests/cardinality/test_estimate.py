"""Tests for the cardinality estimators."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.cardinality.estimate import (
    antijoin_cardinality,
    distinct_after,
    domain_product,
    grouping_cardinality,
    join_cardinality,
    outerjoin_cardinality,
    semijoin_cardinality,
)


class TestJoin:
    def test_basic(self):
        assert join_cardinality(100, 200, 0.01) == pytest.approx(200.0)

    def test_zero_inputs(self):
        assert join_cardinality(0, 200, 0.5) == 0.0


class TestOuterjoin:
    def test_left_outer_at_least_left(self):
        assert outerjoin_cardinality(100, 50, 0.001, full=False) >= 100 * 0.95

    def test_full_outer_at_least_both(self):
        result = outerjoin_cardinality(100, 50, 0.0001, full=True)
        assert result >= 100 + 50 - 5

    def test_selectivity_one_behaves_like_join(self):
        assert outerjoin_cardinality(10, 10, 1.0, full=True) == pytest.approx(100.0)

    def test_distinct_join_values_parameter(self):
        loose = outerjoin_cardinality(100, 1000, 0.01, full=False, right_join_values=5)
        tight = outerjoin_cardinality(100, 1000, 0.01, full=False, right_join_values=1000)
        assert loose > tight  # fewer distinct values -> more unmatched rows


class TestSemiAnti:
    def test_complementarity(self):
        semi = semijoin_cardinality(100, 50, 0.1)
        anti = antijoin_cardinality(100, 50, 0.1)
        assert semi + anti == pytest.approx(100.0)

    def test_semijoin_bounded_by_left(self):
        assert semijoin_cardinality(100, 10_000, 0.5) <= 100.0

    def test_distinct_invariance_for_grouped_inputs(self):
        """The estimate must not change when the right side is collapsed —
        this is what keeps dominance pruning optimality-preserving."""
        via_rows_a = antijoin_cardinality(100, 1000, 0.01, right_join_values=20)
        via_rows_b = antijoin_cardinality(100, 20, 0.01, right_join_values=20)
        assert via_rows_a == pytest.approx(via_rows_b)


class TestGrouping:
    def test_few_groups(self):
        assert grouping_cardinality(1000, 10) == pytest.approx(10.0, rel=0.01)

    def test_domain_larger_than_input(self):
        assert grouping_cardinality(10, 1_000_000) == pytest.approx(10.0, rel=0.01)

    def test_empty_input(self):
        assert grouping_cardinality(0, 10) == 0.0

    def test_single_value_domain(self):
        assert grouping_cardinality(500, 1) == 1.0

    @settings(max_examples=50, deadline=None)
    @given(
        n=st.floats(min_value=1, max_value=1e6),
        d=st.floats(min_value=1, max_value=1e6),
    )
    def test_bounds(self, n, d):
        groups = grouping_cardinality(n, d)
        assert 0 < groups <= min(n, d) * (1 + 1e-9)

    @settings(max_examples=30, deadline=None)
    @given(
        n1=st.floats(min_value=1, max_value=1e5),
        n2=st.floats(min_value=1, max_value=1e5),
        d=st.floats(min_value=1, max_value=1e5),
    )
    def test_monotone_in_input(self, n1, n2, d):
        lo, hi = sorted([n1, n2])
        assert grouping_cardinality(lo, d) <= grouping_cardinality(hi, d) * (1 + 1e-9)


class TestDistinctHelpers:
    def test_distinct_after_caps(self):
        assert distinct_after(["a", "b"], {"a": 10, "b": 10}, 50) == 50

    def test_distinct_after_product(self):
        assert distinct_after(["a", "b"], {"a": 3, "b": 4}, 1000) == 12

    def test_distinct_after_default(self):
        assert distinct_after(["a"], {}, 100) == 100

    def test_domain_product_uncapped(self):
        assert domain_product(["a", "b"], {"a": 100, "b": 100}) == 10_000

    def test_domain_product_overflow_guard(self):
        assert domain_product(["a", "b"], {"a": 1e9, "b": 1e9}) == 1e12
