"""Tests for Eqv. 42 — eliminating the top grouping over singleton groups."""

from hypothesis import given, settings, strategies as st

from repro.aggregates import avg, count, count_star, max_, min_, sum_
from repro.aggregates.vector import AggItem, AggVector
from repro.algebra import operators as ops
from repro.algebra.relation import Relation
from repro.algebra.values import NULL
from repro.rewrites.top_elimination import eliminate_top_grouping, singleton_group_extensions


def vector():
    return AggVector(
        [
            AggItem("n", count_star()),
            AggItem("s", sum_("v")),
            AggItem("c", count("v")),
            AggItem("lo", min_("v")),
            AggItem("hi", max_("v")),
            AggItem("m", avg("v")),
        ]
    )


class TestEqv42:
    def test_simple_key_grouping(self):
        rel = Relation.from_tuples(["k", "v"], [(1, 10), (2, NULL), (3, 30)])
        grouped = ops.group_by(rel, ["k"], vector())
        eliminated = eliminate_top_grouping(rel, ["k"], vector())
        assert eliminated == grouped

    @settings(max_examples=50, deadline=None)
    @given(
        values=st.lists(
            st.one_of(st.integers(min_value=-5, max_value=5), st.just(NULL)),
            min_size=0,
            max_size=8,
        )
    )
    def test_property_on_key_grouped_input(self, values):
        rows = [(i, v) for i, v in enumerate(values)]
        rel = Relation.from_tuples(["k", "v"], rows)
        grouped = ops.group_by(rel, ["k"], vector())
        eliminated = eliminate_top_grouping(rel, ["k"], vector())
        assert eliminated == grouped

    def test_extensions_shape(self):
        exts = singleton_group_extensions(vector())
        assert [name for name, _ in exts] == ["n", "s", "c", "lo", "hi", "m"]
