"""Property-based validation of the Fig. 3 equivalences.

For random relations, random aggregation vectors and every operator/side
combination, the eager right-hand side must equal the lazy left-hand side.
This computationally validates Eqvs. 10–41 (and the appendix proofs).
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.aggregates import avg, count, count_star, max_, min_, sum_
from repro.aggregates.vector import AggItem, AggVector
from repro.algebra.expressions import Attr
from repro.algebra.relation import Relation
from repro.algebra.values import NULL
from repro.rewrites.eager import eager_groupby, eager_split, lazy_groupby
from repro.rewrites.pushdown import OpKind

PRED = Attr("j1").eq(Attr("j2"))
G = ["g1", "g2"]
G_LEFT_ONLY = ["g1"]

small_value = st.one_of(st.integers(min_value=-3, max_value=3), st.just(NULL))
small_key = st.integers(min_value=0, max_value=3)


@st.composite
def side_relation(draw, prefix: str, max_rows: int = 6):
    n = draw(st.integers(min_value=0, max_value=max_rows))
    rows = [
        (
            draw(small_key),  # grouping attribute
            draw(st.one_of(small_key, st.just(NULL))),  # join attribute
            draw(small_value),  # aggregated attribute
        )
        for _ in range(n)
    ]
    g, j, a = f"g{prefix}", f"j{prefix}", f"a{prefix}"
    return Relation.from_tuples([g, j, a], rows)


def full_vector():
    return AggVector(
        [
            AggItem("n", count_star()),
            AggItem("s1", sum_("a1")),
            AggItem("c1", count("a1")),
            AggItem("lo1", min_("a1")),
            AggItem("s2", sum_("a2")),
            AggItem("c2", count("a2")),
            AggItem("hi2", max_("a2")),
        ]
    )


def left_only_vector():
    return AggVector(
        [
            AggItem("n", count_star()),
            AggItem("s1", sum_("a1")),
            AggItem("c1", count("a1")),
            AggItem("lo1", min_("a1")),
        ]
    )


TWO_SIDED_OPS = [OpKind.INNER, OpKind.LEFT_OUTER, OpKind.FULL_OUTER]
LEFT_ONLY_OPS = [OpKind.LEFT_SEMI, OpKind.LEFT_ANTI]


class TestEagerOneSide:
    @pytest.mark.parametrize("op", TWO_SIDED_OPS, ids=lambda o: o.value)
    @pytest.mark.parametrize("side", [1, 2])
    @settings(max_examples=60, deadline=None)
    @given(e1=side_relation("1"), e2=side_relation("2"))
    def test_two_sided_operators(self, op, side, e1, e2):
        vector = full_vector()
        lazy = lazy_groupby(op, e1, e2, PRED, G, vector)
        eager = eager_groupby(op, e1, e2, PRED, G, vector, side=side)
        assert eager is not None
        assert eager == lazy

    @pytest.mark.parametrize("op", LEFT_ONLY_OPS, ids=lambda o: o.value)
    @settings(max_examples=60, deadline=None)
    @given(e1=side_relation("1"), e2=side_relation("2"))
    def test_left_only_operators(self, op, e1, e2):
        vector = left_only_vector()
        lazy = lazy_groupby(op, e1, e2, PRED, G_LEFT_ONLY, vector)
        eager = eager_groupby(op, e1, e2, PRED, G_LEFT_ONLY, vector, side=1)
        assert eager is not None
        assert eager == lazy

    @pytest.mark.parametrize("op", LEFT_ONLY_OPS, ids=lambda o: o.value)
    def test_left_only_operators_reject_side_2(self, op):
        e1 = Relation.from_tuples(["g1", "j1", "a1"], [(1, 1, 1)])
        e2 = Relation.from_tuples(["g2", "j2", "a2"], [(1, 1, 1)])
        assert eager_groupby(op, e1, e2, PRED, G_LEFT_ONLY, left_only_vector(), side=2) is None


class TestEagerSplit:
    @pytest.mark.parametrize("op", TWO_SIDED_OPS, ids=lambda o: o.value)
    @settings(max_examples=60, deadline=None)
    @given(e1=side_relation("1"), e2=side_relation("2"))
    def test_split_both_sides(self, op, e1, e2):
        vector = full_vector()
        lazy = lazy_groupby(op, e1, e2, PRED, G, vector)
        eager = eager_split(op, e1, e2, PRED, G, vector)
        assert eager is not None
        assert eager == lazy

    def test_split_rejected_for_left_only_ops(self):
        e1 = Relation.from_tuples(["g1", "j1", "a1"], [(1, 1, 1)])
        e2 = Relation.from_tuples(["g2", "j2", "a2"], [(1, 1, 1)])
        assert eager_split(OpKind.LEFT_SEMI, e1, e2, PRED, G_LEFT_ONLY, left_only_vector()) is None


class TestGroupjoin:
    """Eqvs. 39–41: pushing grouping into the groupjoin's left argument."""

    @settings(max_examples=60, deadline=None)
    @given(e1=side_relation("1"), e2=side_relation("2"))
    def test_groupjoin_eager_left(self, e1, e2):
        gj_vector = AggVector([AggItem("g", sum_("a2")), AggItem("m", count_star())])
        # F references left attributes and the groupjoin outputs g/m.
        vector = AggVector(
            [
                AggItem("n", count_star()),
                AggItem("s1", sum_("a1")),
                AggItem("sg", sum_("g")),
                AggItem("sm", sum_("m")),
                AggItem("hg", max_("g")),
            ]
        )
        lazy = lazy_groupby(
            OpKind.GROUPJOIN, e1, e2, PRED, G_LEFT_ONLY, vector, groupjoin_vector=gj_vector
        )
        eager = eager_groupby(
            OpKind.GROUPJOIN, e1, e2, PRED, G_LEFT_ONLY, vector, side=1,
            groupjoin_vector=gj_vector,
        )
        assert eager is not None
        assert eager == lazy

    def test_groupjoin_rejects_side_2(self):
        e1 = Relation.from_tuples(["g1", "j1", "a1"], [(1, 1, 1)])
        e2 = Relation.from_tuples(["g2", "j2", "a2"], [(1, 1, 1)])
        gj_vector = AggVector([AggItem("g", sum_("a2"))])
        vector = AggVector([AggItem("sg", sum_("g"))])
        assert (
            eager_groupby(
                OpKind.GROUPJOIN, e1, e2, PRED, G_LEFT_ONLY, vector, side=2,
                groupjoin_vector=gj_vector,
            )
            is None
        )


class TestAvgHandling:
    """avg must be normalised to sum/countNN and reconstructed (Sec. 2.1.2)."""

    @pytest.mark.parametrize("op", TWO_SIDED_OPS, ids=lambda o: o.value)
    @pytest.mark.parametrize("side", [1, 2])
    @settings(max_examples=40, deadline=None)
    @given(e1=side_relation("1"), e2=side_relation("2"))
    def test_avg_pushdown(self, op, side, e1, e2):
        vector = AggVector([AggItem("m1", avg("a1")), AggItem("m2", avg("a2"))])
        lazy = lazy_groupby(op, e1, e2, PRED, G, vector)
        eager = eager_groupby(op, e1, e2, PRED, G, vector, side=side)
        assert eager is not None
        assert eager == lazy


class TestDistinctAggregates:
    """Distinct aggregates: agnostic on the opposite side, blocking on their own."""

    @settings(max_examples=40, deadline=None)
    @given(e1=side_relation("1"), e2=side_relation("2"))
    def test_distinct_on_other_side_allows_pushdown(self, e1, e2):
        vector = AggVector(
            [AggItem("sd2", sum_("a2", distinct=True)), AggItem("s1", sum_("a1"))]
        )
        lazy = lazy_groupby(OpKind.INNER, e1, e2, PRED, G, vector)
        eager = eager_groupby(OpKind.INNER, e1, e2, PRED, G, vector, side=1)
        assert eager is not None
        assert eager == lazy

    def test_distinct_on_pushed_side_blocks(self):
        e1 = Relation.from_tuples(["g1", "j1", "a1"], [(1, 1, 1)])
        e2 = Relation.from_tuples(["g2", "j2", "a2"], [(1, 1, 1)])
        vector = AggVector([AggItem("sd1", sum_("a1", distinct=True))])
        assert eager_groupby(OpKind.INNER, e1, e2, PRED, G, vector, side=1) is None

    @settings(max_examples=40, deadline=None)
    @given(e1=side_relation("1"), e2=side_relation("2"))
    def test_count_distinct_on_other_side(self, e1, e2):
        vector = AggVector(
            [AggItem("cd1", count("a1", distinct=True)), AggItem("s2", sum_("a2"))]
        )
        lazy = lazy_groupby(OpKind.FULL_OUTER, e1, e2, PRED, G, vector)
        eager = eager_groupby(OpKind.FULL_OUTER, e1, e2, PRED, G, vector, side=2)
        assert eager is not None
        assert eager == lazy


class TestSplittability:
    def test_cross_side_aggregate_blocks_everything(self):
        from repro.algebra.expressions import BinOp

        e1 = Relation.from_tuples(["g1", "j1", "a1"], [(1, 1, 1)])
        e2 = Relation.from_tuples(["g2", "j2", "a2"], [(1, 1, 1)])
        vector = AggVector([AggItem("x", sum_(BinOp("+", Attr("a1"), Attr("a2"))))])
        for side in (1, 2):
            assert eager_groupby(OpKind.INNER, e1, e2, PRED, G, vector, side=side) is None
        assert eager_split(OpKind.INNER, e1, e2, PRED, G, vector) is None
