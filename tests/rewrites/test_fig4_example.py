"""Replication of the paper's worked example (Fig. 4) for Eqvs. 10 and 12."""

from repro.aggregates import count_star, sum_
from repro.aggregates.vector import AggItem, AggVector
from repro.algebra import operators as ops
from repro.algebra.expressions import Attr
from repro.algebra.relation import Relation
from repro.rewrites.eager import eager_groupby, lazy_groupby
from repro.rewrites.pushdown import OpKind


def fig4_e1():
    return Relation.from_tuples(
        ["g1", "j1", "a1"], [(1, 1, 2), (1, 2, 4), (1, 2, 8)]
    )


def fig4_e2():
    return Relation.from_tuples(
        ["g2", "j2", "a2"], [(1, 1, 2), (1, 1, 4), (1, 2, 8)]
    )


def vector():
    return AggVector(
        [
            AggItem("c", count_star()),
            AggItem("b1", sum_("a1")),
            AggItem("b2", sum_("a2")),
        ]
    )


PRED = Attr("j1").eq(Attr("j2"))
G = ["g1", "g2"]


class TestEqv10InnerJoin:
    """Example 1 (Sec. 3.1.1): the inner join case."""

    def test_lazy_side_produces_e4(self):
        result = lazy_groupby(OpKind.INNER, fig4_e1(), fig4_e2(), PRED, G, vector())
        expected = Relation.from_tuples(["g1", "g2", "c", "b1", "b2"], [(1, 1, 4, 16, 22)])
        assert result == expected

    def test_intermediate_e5_inner_grouping(self):
        """Γ_{g1,j1; F1 ∘ c1:count(*)}(e1) — relation e5 of Fig. 4."""
        inner = AggVector([AggItem("c1", count_star()), AggItem("b1'", sum_("a1"))])
        grouped = ops.group_by(fig4_e1(), ["g1", "j1"], inner)
        expected = Relation.from_tuples(
            ["g1", "j1", "c1", "b1'"], [(1, 1, 1, 2), (1, 2, 2, 12)]
        )
        assert grouped == expected

    def test_eager_rhs_matches_lazy_lhs(self):
        lazy = lazy_groupby(OpKind.INNER, fig4_e1(), fig4_e2(), PRED, G, vector())
        eager = eager_groupby(OpKind.INNER, fig4_e1(), fig4_e2(), PRED, G, vector(), side=1)
        assert eager is not None
        assert eager == lazy


class TestEqv12FullOuterjoin:
    """Example 2 (Sec. 3.1.2): the full outerjoin with defaults."""

    def e1_full(self):
        # Rows below the separating line of Fig. 4 (an extra unmatched tuple).
        return Relation.from_tuples(
            ["g1", "j1", "a1"], [(1, 1, 2), (1, 2, 4), (1, 2, 8), (2, 5, 16)]
        )

    def e2_full(self):
        return Relation.from_tuples(
            ["g2", "j2", "a2"], [(1, 1, 2), (1, 1, 4), (1, 2, 8), (2, 7, 16)]
        )

    def test_eager_full_outerjoin_matches_lazy(self):
        lazy = lazy_groupby(OpKind.FULL_OUTER, self.e1_full(), self.e2_full(), PRED, G, vector())
        eager = eager_groupby(
            OpKind.FULL_OUTER, self.e1_full(), self.e2_full(), PRED, G, vector(), side=1
        )
        assert eager is not None
        assert eager == lazy

    def test_orphaned_right_tuples_get_default_c1_equal_1(self):
        """All c1 values of orphaned e2 tuples become 1 (Sec. 3.1.2)."""
        from repro.rewrites.pushdown import plan_pushdown

        f1 = AggVector([AggItem("c", count_star()), AggItem("b1", sum_("a1"))])
        f2 = AggVector([AggItem("b2", sum_("a2"))])
        spec = plan_pushdown(["g1", "j1"], f1, f2, side=1)
        assert spec is not None
        assert spec.count_attr is not None
        assert spec.defaults[spec.count_attr] == 1
        # count(*)'s inner stage defaults to 1, sum's to NULL on {⊥}.
        from repro.algebra.values import is_null

        assert spec.defaults["c'"] == 1
        assert is_null(spec.defaults["b1'"])
