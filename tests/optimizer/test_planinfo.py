"""Unit tests for PlanInfo construction: keys, Cout, aggregation state."""

import pytest

from repro.aggregates import count, count_star, max_, sum_
from repro.aggregates.calls import AggKind
from repro.aggregates.vector import AggItem, AggVector
from repro.algebra.expressions import Attr
from repro.optimizer.planinfo import PlanBuilder, needs_grouping
from repro.plans.nodes import GroupByNode, ProjectNode, ScanNode
from repro.query.spec import JoinEdge, Query, RelationInfo
from repro.query.tree import TreeLeaf, TreeNode
from repro.rewrites.pushdown import OpKind


def make_query(op=OpKind.INNER, aggregates=None, group_by=("r0.g",), with_keys=True):
    keys0 = (frozenset({"r0.id"}),) if with_keys else ()
    keys1 = (frozenset({"r1.id"}),) if with_keys else ()
    relations = [
        RelationInfo(
            "r0", ("r0.id", "r0.g", "r0.a"), 100.0,
            {"r0.id": 100.0, "r0.g": 10.0, "r0.a": 50.0}, keys0,
        ),
        RelationInfo(
            "r1", ("r1.id", "r1.g", "r1.a"), 1000.0,
            {"r1.id": 1000.0, "r1.g": 20.0, "r1.a": 400.0}, keys1,
        ),
    ]
    edges = [JoinEdge(0, op, Attr("r0.id").eq(Attr("r1.id")), 0.001)]
    tree = TreeNode(0, TreeLeaf(0), TreeLeaf(1))
    aggs = aggregates or AggVector(
        [AggItem("cnt", count_star()), AggItem("s1", sum_("r1.a"))]
    )
    return Query(relations, edges, tree, group_by, aggs)


class TestLeaf:
    def test_leaf_properties(self):
        query = make_query()
        builder = PlanBuilder(query)
        leaf = builder.leaf(0)
        assert isinstance(leaf.node, ScanNode)
        assert leaf.cost == 0.0  # Cout: scans are free
        assert leaf.cardinality == 100.0
        assert leaf.duplicate_free
        assert leaf.keys == (frozenset({"r0.id"}),)

    def test_leaf_terms_assignment(self):
        query = make_query()
        builder = PlanBuilder(query)
        leaf0 = builder.leaf(0)
        leaf1 = builder.leaf(1)
        # count(*) is anchored at vertex 0 (special case S1).
        assert "cnt" in leaf0.terms
        assert "s1" in leaf1.terms and "s1" not in leaf0.terms

    def test_leaf_with_local_predicate(self):
        query = make_query()
        query.local_predicates[0] = (Attr("r0.g").eq(Attr("r0.g")), 0.25)
        builder = PlanBuilder(query)
        leaf = builder.leaf(0)
        assert leaf.cardinality == 25.0


class TestJoin:
    def test_cout_accumulates(self):
        query = make_query()
        builder = PlanBuilder(query)
        joined = builder.join(
            builder.leaf(0), builder.leaf(1), OpKind.INNER,
            query.edges[0].predicate, 0.001,
        )
        assert joined.cardinality == pytest.approx(100.0)
        assert joined.cost == pytest.approx(100.0)

    def test_inner_join_keys_key_fk(self):
        query = make_query()
        builder = PlanBuilder(query)
        joined = builder.join(
            builder.leaf(0), builder.leaf(1), OpKind.INNER,
            query.edges[0].predicate, 0.001,
        )
        # Both sides join on their keys: keys of both survive (Sec. 2.3.1).
        assert frozenset({"r0.id"}) in joined.keys
        assert frozenset({"r1.id"}) in joined.keys

    def test_inner_join_keys_no_keys(self):
        query = make_query(with_keys=False)
        builder = PlanBuilder(query)
        joined = builder.join(
            builder.leaf(0), builder.leaf(1), OpKind.INNER,
            query.edges[0].predicate, 0.001,
        )
        assert joined.keys == ()
        assert not joined.duplicate_free

    def test_semijoin_keeps_left_keys_only(self):
        query = make_query(op=OpKind.LEFT_SEMI, aggregates=AggVector(
            [AggItem("cnt", count_star()), AggItem("s0", sum_("r0.a"))]
        ))
        builder = PlanBuilder(query)
        joined = builder.join(
            builder.leaf(0), builder.leaf(1), OpKind.LEFT_SEMI,
            query.edges[0].predicate, 0.001,
        )
        assert joined.keys == (frozenset({"r0.id"}),)
        assert joined.raw_attrs == frozenset({"r0.id", "r0.g", "r0.a"})

    def test_full_outerjoin_combines_keys(self):
        query = make_query(op=OpKind.FULL_OUTER)
        builder = PlanBuilder(query)
        joined = builder.join(
            builder.leaf(0), builder.leaf(1), OpKind.FULL_OUTER,
            query.edges[0].predicate, 0.001,
        )
        assert joined.keys == (frozenset({"r0.id", "r1.id"}),)


class TestGroup:
    def test_group_reduces_cardinality_and_sets_key(self):
        query = make_query()
        builder = PlanBuilder(query)
        leaf = builder.leaf(1)
        grouped = builder.group(leaf, frozenset({"r1.id", "r1.g"}))
        assert grouped is not None
        assert grouped.duplicate_free
        assert any(k <= frozenset({"r1.id", "r1.g"}) for k in grouped.keys)
        assert grouped.cost == pytest.approx(grouped.cardinality)

    def test_group_decomposes_terms(self):
        query = make_query()
        builder = PlanBuilder(query)
        grouped = builder.group(builder.leaf(1), frozenset({"r1.id"}))
        assert grouped.terms["s1"].kind is AggKind.SUM
        # outer stage references the inner column, not the raw attribute
        assert "r1.a" not in grouped.terms["s1"].attributes()

    def test_group_adds_count_when_other_side_sensitive(self):
        query = make_query()  # cnt (count(*), vertex 0) is duplicate sensitive
        builder = PlanBuilder(query)
        grouped = builder.group(builder.leaf(1), frozenset({"r1.id"}))
        assert grouped.scale_cols  # count column introduced

    def test_group_skips_count_when_other_side_agnostic(self):
        aggs = AggVector([AggItem("m0", max_("r0.a")), AggItem("s1", sum_("r1.a"))])
        query = make_query(aggregates=aggs)
        builder = PlanBuilder(query)
        grouped = builder.group(builder.leaf(1), frozenset({"r1.id"}))
        assert grouped.scale_cols == ()

    def test_group_rejects_distinct_on_non_grouping_attr(self):
        aggs = AggVector([AggItem("sd", sum_("r1.a", distinct=True))])
        query = make_query(aggregates=aggs)
        builder = PlanBuilder(query)
        assert builder.group(builder.leaf(1), frozenset({"r1.id"})) is None

    def test_group_passes_distinct_on_grouping_attr(self):
        aggs = AggVector([AggItem("sd", sum_("r1.a", distinct=True))])
        query = make_query(aggregates=aggs)
        builder = PlanBuilder(query)
        grouped = builder.group(builder.leaf(1), frozenset({"r1.id", "r1.a"}))
        assert grouped is not None
        assert grouped.terms["sd"] == sum_("r1.a", distinct=True)

    def test_group_defaults_match_paper(self):
        query = make_query()
        builder = PlanBuilder(query)
        grouped = builder.group(builder.leaf(1), frozenset({"r1.id"}))
        from repro.algebra.values import is_null

        count_col = grouped.scale_cols[0]
        assert grouped.defaults[count_col] == 1
        sum_cols = [c for c in grouped.defaults if c.startswith("s1")]
        assert sum_cols and is_null(grouped.defaults[sum_cols[0]])


class TestNeedsGrouping:
    def test_false_when_key_in_group_attrs(self):
        query = make_query()
        builder = PlanBuilder(query)
        leaf = builder.leaf(0)
        assert not needs_grouping(frozenset({"r0.id", "r0.g"}), leaf)

    def test_true_without_key(self):
        query = make_query()
        builder = PlanBuilder(query)
        leaf = builder.leaf(0)
        assert needs_grouping(frozenset({"r0.g"}), leaf)

    def test_true_when_not_duplicate_free(self):
        query = make_query(with_keys=False)
        builder = PlanBuilder(query)
        leaf = builder.leaf(0)
        assert needs_grouping(frozenset({"r0.id", "r0.g", "r0.a"}), leaf)


class TestFinishTop:
    def test_adds_grouping_when_needed(self):
        query = make_query()
        builder = PlanBuilder(query)
        joined = builder.join(
            builder.leaf(0), builder.leaf(1), OpKind.INNER,
            query.edges[0].predicate, 0.001,
        )
        final = builder.finish_top(joined)
        assert isinstance(final.node, GroupByNode)
        assert final.cost > joined.cost

    def test_eliminates_grouping_over_key(self):
        query = make_query(group_by=("r0.id",))
        builder = PlanBuilder(query)
        joined = builder.join(
            builder.leaf(0), builder.leaf(1), OpKind.INNER,
            query.edges[0].predicate, 0.001,
        )
        final = builder.finish_top(joined)
        assert isinstance(final.node, ProjectNode)  # Eqv. 42 applied
        assert final.cost == joined.cost  # projections are free
