"""Tests for attribute-equivalence tracking and closure-aware key checks."""

from repro.aggregates import count_star, sum_
from repro.aggregates.vector import AggItem, AggVector
from repro.algebra.expressions import Attr, Logical
from repro.optimizer.planinfo import (
    PlanBuilder,
    _equality_pairs,
    _merge_equiv,
    _restrict_equiv,
    needs_grouping,
)
from repro.query.spec import JoinEdge, Query, RelationInfo
from repro.query.tree import TreeLeaf, TreeNode
from repro.rewrites.pushdown import OpKind


def two_relation_query(op=OpKind.INNER):
    relations = [
        RelationInfo(
            "r0", ("r0.id", "r0.g", "r0.a"), 100.0,
            {"r0.id": 100.0, "r0.g": 10.0}, (frozenset({"r0.id"}),),
        ),
        RelationInfo(
            "r1", ("r1.id", "r1.fk", "r1.a"), 500.0,
            {"r1.id": 500.0, "r1.fk": 100.0}, (frozenset({"r1.id"}),),
        ),
    ]
    edges = [JoinEdge(0, op, Attr("r0.id").eq(Attr("r1.fk")), 0.01)]
    tree = TreeNode(0, TreeLeaf(0), TreeLeaf(1))
    aggs = AggVector([AggItem("cnt", count_star()), AggItem("s", sum_("r1.a"))])
    return Query(relations, edges, tree, ("r0.g",), aggs)


class TestHelpers:
    def test_equality_pairs_single(self):
        assert _equality_pairs(Attr("a").eq(Attr("b"))) == [("a", "b")]

    def test_equality_pairs_conjunction(self):
        pred = Logical("and", (Attr("a").eq(Attr("b")), Attr("c").eq(Attr("d"))))
        assert _equality_pairs(pred) == [("a", "b"), ("c", "d")]

    def test_equality_pairs_ignores_constants(self):
        from repro.algebra.expressions import Const

        assert _equality_pairs(Attr("a").eq(Const(1))) == []

    def test_merge_transitive(self):
        merged = _merge_equiv((), [("a", "b"), ("b", "c")])
        assert merged == (frozenset({"a", "b", "c"}),)

    def test_merge_disjoint(self):
        merged = _merge_equiv((), [("a", "b"), ("x", "y")])
        assert set(merged) == {frozenset({"a", "b"}), frozenset({"x", "y"})}

    def test_restrict_drops_singletons(self):
        restricted = _restrict_equiv(
            (frozenset({"a", "b"}), frozenset({"x", "y"})), frozenset({"a", "b", "x"})
        )
        assert restricted == (frozenset({"a", "b"}),)


class TestPlanEquivalences:
    def test_inner_join_records_equivalence(self):
        query = two_relation_query(OpKind.INNER)
        builder = PlanBuilder(query)
        joined = builder.join(
            builder.leaf(0), builder.leaf(1), OpKind.INNER,
            query.edges[0].predicate, 0.01,
        )
        assert frozenset({"r0.id", "r1.fk"}) in joined.equiv

    def test_outerjoin_does_not_record_equivalence(self):
        query = two_relation_query(OpKind.LEFT_OUTER)
        builder = PlanBuilder(query)
        joined = builder.join(
            builder.leaf(0), builder.leaf(1), OpKind.LEFT_OUTER,
            query.edges[0].predicate, 0.01,
        )
        # padding breaks the equality: unmatched left rows have r1.fk NULL
        assert joined.equiv == ()

    def test_closure_implies_key_through_equality(self):
        query = two_relation_query(OpKind.INNER)
        builder = PlanBuilder(query)
        joined = builder.join(
            builder.leaf(0), builder.leaf(1), OpKind.INNER,
            query.edges[0].predicate, 0.01,
        )
        # r0.id is a key of r0, and r0.id = r1.fk: r1.fk side determines it.
        # r1.id keys the join (FK join into r0's key keeps r1's keys).
        assert joined.has_key_within(frozenset({"r1.id"}))
        # via closure: {r1.fk} ∪ closure ⊇ {r0.id} — but r0.id alone is not
        # a key of the *join* (a customer may have many orders), so:
        assert joined.closure(frozenset({"r1.fk"})) >= frozenset({"r0.id", "r1.fk"})

    def test_needs_grouping_uses_closure(self):
        query = two_relation_query(OpKind.INNER)
        builder = PlanBuilder(query)
        # Group r1 by {fk, a}: composite key {r1.fk, r1.a}.  Join with r0 on
        # r0.id = r1.fk (r0.id keyed, r1.fk not): κ = right side's keys.
        grouped = builder.group(builder.leaf(1), frozenset({"r1.fk", "r1.a"}))
        joined = builder.join(
            builder.leaf(0), grouped, OpKind.INNER, query.edges[0].predicate, 0.01
        )
        assert frozenset({"r1.fk", "r1.a"}) in joined.keys
        # {r0.id, r1.a} implies the key only via the equality r0.id = r1.fk:
        assert not needs_grouping(frozenset({"r0.id", "r1.a"}), joined)
        # plain subset containment would say the opposite:
        assert not any(k <= frozenset({"r0.id", "r1.a"}) for k in joined.keys)
        # and without the equivalence there is genuinely no key:
        assert needs_grouping(frozenset({"r0.g", "r1.a"}), joined)

    def test_groupjoin_keeps_left_equivalences_only(self):
        query = two_relation_query(OpKind.INNER)
        builder = PlanBuilder(query)
        joined = builder.join(
            builder.leaf(0), builder.leaf(1), OpKind.INNER,
            query.edges[0].predicate, 0.01,
        )
        grouped = builder.group(joined, frozenset({"r0.g", "r0.id", "r1.fk"}))
        # the class {r0.id, r1.fk} survives the grouping (both attrs kept)
        assert frozenset({"r0.id", "r1.fk"}) in grouped.equiv


class TestFdSupersetWithEquiv:
    def test_equivalences_participate_in_dominance(self):
        from repro.optimizer.strategies import _fd_superset

        query = two_relation_query(OpKind.INNER)
        builder = PlanBuilder(query)
        joined = builder.join(
            builder.leaf(0), builder.leaf(1), OpKind.INNER,
            query.edges[0].predicate, 0.01,
        )
        import dataclasses

        stripped = dataclasses.replace(joined, equiv=())
        assert _fd_superset(joined, stripped)      # more FDs dominate fewer
        assert not _fd_superset(stripped, joined)  # but not vice versa
