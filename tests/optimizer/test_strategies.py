"""Unit tests for the DP-table insertion strategies."""

import pytest

from repro.optimizer.planinfo import PlanInfo
from repro.optimizer.strategies import (
    DphypStrategy,
    EaAllStrategy,
    EaPruneStrategy,
    H1Strategy,
    H2Strategy,
    make_strategy,
)
from repro.plans.nodes import ScanNode


def plan(cost, card=10.0, keys=(), dup_free=False, eagerness=0):
    return PlanInfo(
        node=ScanNode("r", ("r.a",)),
        rel_set=1,
        cost=cost,
        cardinality=card,
        keys=tuple(frozenset(k) for k in keys),
        duplicate_free=dup_free,
        raw_attrs=frozenset({"r.a"}),
        distinct={},
        terms={},
        scale_cols=(),
        defaults={},
        eagerness=eagerness,
    )


class TestFactory:
    @pytest.mark.parametrize(
        "name,cls",
        [
            ("dphyp", DphypStrategy),
            ("ea-all", EaAllStrategy),
            ("ea-prune", EaPruneStrategy),
            ("h1", H1Strategy),
            ("h2", H2Strategy),
        ],
    )
    def test_make_strategy(self, name, cls):
        assert isinstance(make_strategy(name), cls)

    def test_unknown_rejected(self):
        with pytest.raises(ValueError):
            make_strategy("magic")

    def test_h2_factor_validation(self):
        with pytest.raises(ValueError):
            H2Strategy(0.9)

    def test_only_dphyp_is_lazy(self):
        assert not DphypStrategy().explore_eager
        for name in ("ea-all", "ea-prune", "h1", "h2"):
            assert make_strategy(name).explore_eager


class TestSinglePlanStrategies:
    @pytest.mark.parametrize("strategy", [DphypStrategy(), H1Strategy()])
    def test_keeps_cheapest(self, strategy):
        bucket = []
        strategy.insert(bucket, plan(10.0))
        strategy.insert(bucket, plan(5.0))
        strategy.insert(bucket, plan(7.0))
        assert len(bucket) == 1
        assert bucket[0].cost == 5.0


class TestEaAll:
    def test_keeps_everything(self):
        strategy = EaAllStrategy()
        bucket = []
        for cost in (10.0, 5.0, 7.0):
            strategy.insert(bucket, plan(cost))
        assert len(bucket) == 3


class TestEaPrune:
    def test_dominated_new_plan_discarded(self):
        strategy = EaPruneStrategy()
        bucket = [plan(5.0, card=5.0)]
        strategy.insert(bucket, plan(10.0, card=10.0))
        assert len(bucket) == 1 and bucket[0].cost == 5.0

    def test_dominated_old_plan_discarded(self):
        strategy = EaPruneStrategy()
        bucket = [plan(10.0, card=10.0)]
        strategy.insert(bucket, plan(5.0, card=5.0))
        assert len(bucket) == 1 and bucket[0].cost == 5.0

    def test_incomparable_plans_coexist(self):
        strategy = EaPruneStrategy()
        bucket = [plan(5.0, card=100.0)]
        strategy.insert(bucket, plan(10.0, card=1.0))  # cheaper card, higher cost
        assert len(bucket) == 2

    def test_keys_block_domination(self):
        strategy = EaPruneStrategy()
        # The cheaper plan has no keys; the expensive one is duplicate-free
        # with a key — its FDs are strictly richer, so it must survive.
        bucket = [plan(5.0, card=5.0)]
        strategy.insert(bucket, plan(6.0, card=5.0, keys=[{"r.a"}], dup_free=True))
        assert len(bucket) == 2

    def test_finer_keys_dominate_coarser(self):
        strategy = EaPruneStrategy()
        bucket = [plan(6.0, card=5.0, keys=[{"r.a", "r.b"}], dup_free=True)]
        strategy.insert(bucket, plan(5.0, card=5.0, keys=[{"r.a"}], dup_free=True))
        assert len(bucket) == 1 and bucket[0].cost == 5.0

    def test_duplicate_freeness_participates(self):
        strategy = EaPruneStrategy()
        bucket = [plan(5.0, card=5.0, keys=[{"r.a"}], dup_free=False)]
        strategy.insert(bucket, plan(6.0, card=5.0, keys=[{"r.a"}], dup_free=True))
        assert len(bucket) == 2


class TestH2:
    def test_equal_eagerness_plain_cost(self):
        strategy = H2Strategy(1.1)
        bucket = [plan(10.0, eagerness=1)]
        strategy.insert(bucket, plan(9.0, eagerness=1))
        assert bucket[0].cost == 9.0

    def test_more_eager_wins_within_tolerance(self):
        strategy = H2Strategy(1.1)
        bucket = [plan(10.0, eagerness=0)]
        strategy.insert(bucket, plan(10.5, eagerness=2))  # 10.5 < 1.1 * 10
        assert bucket[0].cost == 10.5

    def test_more_eager_loses_beyond_tolerance(self):
        strategy = H2Strategy(1.1)
        bucket = [plan(10.0, eagerness=0)]
        strategy.insert(bucket, plan(12.0, eagerness=2))
        assert bucket[0].cost == 10.0

    def test_less_eager_needs_clear_win(self):
        strategy = H2Strategy(1.1)
        bucket = [plan(10.0, eagerness=2)]
        strategy.insert(bucket, plan(9.5, eagerness=0))  # 1.1*9.5 > 10
        assert bucket[0].cost == 10.0
        strategy.insert(bucket, plan(9.0, eagerness=0))  # 1.1*9.0 < 10
        assert bucket[0].cost == 9.0


class TestInsertTop:
    def test_keeps_single_cheapest(self):
        strategy = EaAllStrategy()
        bucket = []
        strategy.insert_top(bucket, plan(10.0))
        strategy.insert_top(bucket, plan(5.0))
        strategy.insert_top(bucket, plan(7.0))
        assert len(bucket) == 1 and bucket[0].cost == 5.0


class TestPruneBucketMatchesSeedScan:
    """The Pareto-frontier bucket keeps exactly the seed scan's surviving
    plan *set* (dominance is a transitive preorder, so the maximal set is
    insertion-order independent; only iteration order may differ)."""

    def _random_plans(self, seed, count=120):
        import random

        rng = random.Random(seed)
        key_pool = [frozenset({f"k{i}"}) for i in range(3)]
        plans = []
        for _ in range(count):
            keys = tuple(k for k in key_pool if rng.random() < 0.4)
            plans.append(
                PlanInfo(
                    node=ScanNode("r", ("r.a",)),
                    rel_set=1,
                    cost=float(rng.randint(1, 12)),
                    cardinality=float(rng.randint(1, 12)),
                    keys=keys,
                    duplicate_free=rng.random() < 0.5,
                    raw_attrs=frozenset({"r.a"}),
                    distinct={},
                    terms={},
                    scale_cols=(),
                    defaults={},
                )
            )
        return plans

    @pytest.mark.parametrize("criteria", ["full", "cost-card", "cost-only"])
    @pytest.mark.parametrize("seed", range(8))
    def test_surviving_sets_identical(self, criteria, seed):
        plans = self._random_plans(seed)
        ordered = EaPruneStrategy(criteria)
        scan = EaPruneStrategy(criteria, ordered=False)
        fast_bucket = ordered.new_bucket()
        seed_bucket = scan.new_bucket()
        assert isinstance(seed_bucket, list) and not isinstance(
            seed_bucket, type(fast_bucket)
        )
        for p in plans:
            ordered.insert(fast_bucket, p)
            scan.insert(seed_bucket, p)
        fast = {(p.cost, p.cardinality, p.keys, p.duplicate_free) for p in fast_bucket}
        slow = {(p.cost, p.cardinality, p.keys, p.duplicate_free) for p in seed_bucket}
        assert fast == slow
        assert len(fast_bucket) == len(seed_bucket)

    def test_bucket_iterates_cost_sorted_within_signature(self):
        strategy = EaPruneStrategy()
        bucket = strategy.new_bucket()
        for cost, card in ((5.0, 1.0), (1.0, 5.0), (3.0, 3.0)):
            strategy.insert(bucket, plan(cost, card=card))
        costs = [p.cost for p in bucket]
        assert costs == sorted(costs)

    def test_counters_track_discards_and_evictions(self):
        strategy = EaPruneStrategy()
        bucket = strategy.new_bucket()
        strategy.insert(bucket, plan(5.0, card=5.0))
        strategy.insert(bucket, plan(6.0, card=6.0))  # dominated: discarded
        strategy.insert(bucket, plan(1.0, card=1.0))  # dominates: evicts 5.0
        assert strategy.counters["prune_inserts"] == 3
        assert strategy.counters["plans_discarded"] == 1
        assert strategy.counters["plans_evicted"] == 1
        assert len(bucket) == 1
