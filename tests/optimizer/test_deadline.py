"""Cooperative planning deadlines and graceful degradation.

The :class:`~repro.optimizer.deadline.Deadline` is the robustness
tentpole's core primitive: a budget checked cheaply inside the ccp loop
of every engine, raising :class:`PlanningDeadlineExceeded` from inside
the DP so the driver can fall back to an H1 heuristic plan (marked
``degraded``) instead of answering with an error or, worse, burning CPU
past the budget.
"""

import random

import pytest

from repro.optimizer import optimize
from repro.optimizer.config import OptimizerConfig
from repro.optimizer.deadline import (
    DEFAULT_CHECK_EVERY,
    Deadline,
    PlanningDeadlineExceeded,
)
from repro.optimizer.driver import DEGRADED_STRATEGY
from repro.service.cache import PlanCache
from repro.service.fingerprint import query_fingerprint
from repro.workload import generate_query

ENGINES = ("reference", "indexed", "vectorized")


def _query(n=6, seed=7):
    return generate_query(n, random.Random(seed))


class TestDeadlineObject:
    def test_not_expired_with_generous_budget(self):
        deadline = Deadline(3600.0)
        assert not deadline.expired
        assert deadline.remaining() > 3500.0
        deadline.check()  # does not raise

    def test_zero_budget_is_immediately_expired(self):
        deadline = Deadline(0.0)
        assert deadline.expired
        with pytest.raises(PlanningDeadlineExceeded):
            deadline.check()

    def test_first_tick_checks_immediately(self):
        """A blown budget must fire on the *first* ccp, not after
        ``check_every`` of them — otherwise tiny queries never degrade."""
        deadline = Deadline(0.0)
        with pytest.raises(PlanningDeadlineExceeded):
            deadline.tick()

    def test_tick_reads_clock_every_check_every(self):
        reads = []

        def clock():
            reads.append(1)
            return float(len(reads))

        deadline = Deadline(1e9, check_every=8, clock=clock)
        baseline = len(reads)
        boundaries = 0
        for _ in range(33):
            if deadline.tick():
                boundaries += 1
        # first tick + every 8th after it: ticks 1, 9, 17, 25, 33.
        assert boundaries == 5
        assert len(reads) - baseline == boundaries

    def test_expiry_carries_budget_and_elapsed(self):
        now = [0.0]
        deadline = Deadline(5.0, check_every=1, clock=lambda: now[0])
        now[0] = 7.5
        with pytest.raises(PlanningDeadlineExceeded) as exc_info:
            deadline.tick()
        assert exc_info.value.budget_seconds == 5.0
        assert exc_info.value.elapsed_seconds == pytest.approx(7.5)

    def test_default_check_interval(self):
        assert Deadline(1.0).check_every == DEFAULT_CHECK_EVERY

    def test_clamps_bad_check_every(self):
        assert Deadline(1.0, check_every=0).check_every == 1


class TestDegradedFallback:
    @pytest.mark.parametrize("engine", ENGINES)
    def test_zero_budget_degrades_to_heuristic(self, engine):
        query = _query()
        config = OptimizerConfig(deadline_seconds=0.0, engine=engine)
        result = optimize(query, config=config)
        assert result.degraded is True
        assert result.strategy == DEGRADED_STRATEGY
        assert result.cost > 0
        assert result.stats.get("degraded") == 1

    def test_generous_budget_never_degrades(self):
        query = _query()
        config = OptimizerConfig(deadline_seconds=3600.0)
        result = optimize(query, config=config)
        assert result.degraded is False
        assert result.strategy == "ea-prune"

    def test_error_mode_raises_instead(self):
        query = _query()
        config = OptimizerConfig(deadline_seconds=0.0, degradation="error")
        with pytest.raises(PlanningDeadlineExceeded):
            optimize(query, config=config)

    def test_degraded_plan_matches_plain_h1(self):
        """The fallback is the real H1 plan, not some other artifact."""
        query = _query(seed=11)
        degraded = optimize(
            query, config=OptimizerConfig(deadline_seconds=0.0)
        )
        plain = optimize(query, config=OptimizerConfig(strategy="h1"))
        assert degraded.cost == pytest.approx(plain.cost)

    def test_explicit_deadline_argument_wins(self):
        query = _query()
        result = optimize(query, config=OptimizerConfig(), deadline=Deadline(0.0))
        assert result.degraded is True


class TestDegradedNeverCached:
    @pytest.mark.parametrize("engine", ENGINES)
    def test_degraded_results_skip_the_cache(self, engine):
        query = _query(seed=3)
        cache = PlanCache(capacity=8)
        config = OptimizerConfig(deadline_seconds=0.0, engine=engine)
        first = optimize(query, cache=cache, config=config)
        assert first.degraded is True
        second = optimize(query, cache=cache, config=config)
        assert second.cache_hit is False
        assert len(cache) == 0

    def test_cache_store_refuses_degraded_results(self):
        """Defence in depth: even a direct store call must refuse."""
        query = _query(seed=5)
        cache = PlanCache(capacity=8)
        result = optimize(query, config=OptimizerConfig(deadline_seconds=0.0))
        assert result.degraded is True
        cache.store(query_fingerprint(query), query, result)
        assert len(cache) == 0

    def test_healthy_results_still_cached(self):
        query = _query(seed=9)
        cache = PlanCache(capacity=8)
        optimize(query, cache=cache, config=OptimizerConfig())
        repeat = optimize(query, cache=cache, config=OptimizerConfig())
        assert repeat.cache_hit is True


class TestConfigValidation:
    def test_negative_deadline_rejected(self):
        with pytest.raises(ValueError):
            OptimizerConfig(deadline_seconds=-1.0)

    def test_unknown_degradation_rejected(self):
        with pytest.raises(ValueError):
            OptimizerConfig(degradation="panic")
