"""Golden-value and engine-equivalence tests for the hot-path refactor.

The indexed engine (iterative enumerator, hypergraph indexes, per-edge
join specs, Pareto buckets) must be observationally identical to the
seed's code path, which survives as ``engine="reference"``:

* identical best-plan cost, ccp count, plans-built count and DP-table
  sizes on the TPC-H workloads, the fixed topologies and random
  generated queries (simple *and* complex-edge shapes),
* golden literal values for the TPC-H queries, pinned so a regression in
  *either* engine (not just a divergence between them) is caught.
"""

import random

import pytest

from repro.optimizer import optimize
from repro.optimizer.strategies import EaPruneStrategy
from repro.tpch.queries import build_ex, build_q3, build_q5, build_q10
from repro.workload import WorkloadConfig, generate_query, topology_query

STRATEGIES = ("dphyp", "ea-prune", "h1", "h2")

TPCH_BUILDERS = {
    "ex": build_ex,
    "q3": build_q3,
    "q5": build_q5,
    "q10": build_q10,
}

#: (query, strategy) → (best cost, ccp count, plans built), measured on the
#: seed implementation.  These are *values*, not tolerances: the optimizer
#: is deterministic and the hot path must not change its output at all.
TPCH_GOLDEN = {
    ("ex", "dphyp"): (60218288.47469728, 10, 7),
    ("ex", "ea-prune"): (149.6511565806907, 10, 48),
    ("ex", "h1"): (166.38510881600084, 10, 16),
    ("ex", "h2"): (166.38510881600084, 10, 16),
    ("q3", "dphyp"): (657073.7495322055, 4, 7),
    ("q3", "ea-prune"): (373657.61567229626, 4, 31),
    ("q3", "h1"): (373657.61567229626, 4, 19),
    ("q3", "h2"): (373657.61567229626, 4, 19),
    ("q5", "dphyp"): (1101803.7812967582, 68, 74),
    ("q5", "ea-prune"): (238439.60164483933, 68, 4018),
    ("q5", "h1"): (592921.7549799087, 68, 278),
    ("q5", "h2"): (592921.7549799087, 68, 278),
    ("q10", "dphyp"): (205534.67790111882, 10, 14),
    ("q10", "ea-prune"): (131728.57461675355, 10, 204),
    ("q10", "h1"): (153131.03391426985, 10, 44),
    ("q10", "h2"): (153131.03391426985, 10, 44),
}


def _fingerprint(result):
    return (result.cost, result.ccp_count, result.plans_built, result.table_sizes)


class TestTpchGolden:
    @pytest.mark.parametrize("query_name,strategy", sorted(TPCH_GOLDEN))
    def test_indexed_engine_matches_golden_values(self, query_name, strategy):
        result = optimize(TPCH_BUILDERS[query_name](), strategy)
        cost, ccp_count, plans_built = TPCH_GOLDEN[(query_name, strategy)]
        assert result.cost == cost
        assert result.ccp_count == ccp_count
        assert result.plans_built == plans_built

    @pytest.mark.parametrize("query_name,strategy", sorted(TPCH_GOLDEN))
    def test_vectorized_engine_matches_golden_values(self, query_name, strategy):
        """The array core hits the same pinned literals, bit for bit —
        including ``plans_built`` (lane candidates count like object
        candidates).  In a numpy-less environment the engine degrades to
        the indexed path, which pins the identical values."""
        import warnings

        with warnings.catch_warnings():
            warnings.simplefilter("ignore", RuntimeWarning)
            result = optimize(
                TPCH_BUILDERS[query_name](), strategy, engine="vectorized"
            )
        cost, ccp_count, plans_built = TPCH_GOLDEN[(query_name, strategy)]
        assert result.cost == cost
        assert result.ccp_count == ccp_count
        assert result.plans_built == plans_built

    @pytest.mark.parametrize("query_name", sorted(TPCH_BUILDERS))
    def test_engines_identical_on_tpch(self, query_name):
        import warnings

        query = TPCH_BUILDERS[query_name]()
        for strategy in STRATEGIES:
            indexed = optimize(query, strategy)
            for engine in ("reference", "vectorized"):
                with warnings.catch_warnings():
                    warnings.simplefilter("ignore", RuntimeWarning)
                    other = optimize(query, strategy, engine=engine)
                assert _fingerprint(indexed) == _fingerprint(other), (strategy, engine)


class TestEngineEquivalenceOnRandomWorkloads:
    @pytest.mark.parametrize("seed", range(15))
    def test_random_queries_all_strategies(self, seed):
        rng = random.Random(seed)
        query = generate_query(rng.randint(2, 6), random.Random(seed * 7919))
        for strategy in STRATEGIES + ("ea-all",):
            indexed = optimize(query, strategy)
            reference = optimize(query, strategy, engine="reference")
            assert _fingerprint(indexed) == _fingerprint(reference), (seed, strategy)

    @pytest.mark.parametrize("seed", range(6))
    def test_inner_only_cyclic_friendly_workload(self, seed):
        config = WorkloadConfig(inner_only=True)
        query = generate_query(5, random.Random(seed + 31), config)
        for strategy in STRATEGIES:
            indexed = optimize(query, strategy)
            reference = optimize(query, strategy, engine="reference")
            assert _fingerprint(indexed) == _fingerprint(reference)

    @pytest.mark.parametrize("criteria", ["full", "cost-card", "cost-only"])
    def test_pruning_criteria_variants(self, criteria):
        for seed in range(4):
            query = generate_query(5, random.Random(seed + 100))
            indexed = optimize(query, EaPruneStrategy(criteria))
            reference = optimize(
                query, EaPruneStrategy(criteria, ordered=False), engine="reference"
            )
            assert _fingerprint(indexed) == _fingerprint(reference)


class TestEngineEquivalenceOnTopologies:
    @pytest.mark.parametrize("topology", ["chain", "cycle", "star", "clique"])
    @pytest.mark.parametrize("n", [4, 6])
    def test_fixed_topologies(self, topology, n):
        query = topology_query(topology, n)
        for strategy in STRATEGIES:
            indexed = optimize(query, strategy)
            reference = optimize(query, strategy, engine="reference")
            assert _fingerprint(indexed) == _fingerprint(reference), (topology, n, strategy)


class TestHotpathStats:
    def test_stats_populated_on_indexed_runs(self):
        result = optimize(topology_query("chain", 5), "ea-prune")
        assert result.stats["engine_reference"] == 0
        assert result.stats["resolver.resolve_calls"] == result.ccp_count
        assert result.stats["graph.neighborhood_calls"] > 0
        assert result.stats["strategy.prune_inserts"] > 0

    def test_stats_flag_reference_engine(self):
        result = optimize(topology_query("chain", 5), "ea-prune", engine="reference")
        assert result.stats["engine_reference"] == 1
        assert "resolver.resolve_calls" not in result.stats

    def test_stats_survive_cache_hit_copies(self):
        result = optimize(topology_query("chain", 4), "ea-prune")
        hit = result.as_cache_hit()
        assert hit.stats == result.stats
        assert hit.cache_hit and hit.elapsed_seconds == 0.0

    def test_unknown_engine_rejected(self):
        with pytest.raises(ValueError, match="unknown engine"):
            optimize(topology_query("chain", 4), "ea-prune", engine="turbo")


class TestPreparedQueryResolver:
    def test_resolver_is_cached_per_prepared_query(self):
        from repro.optimizer.driver import prepare

        prepared = prepare(topology_query("chain", 5))
        assert prepared.resolver() is prepared.resolver()

    def test_prepared_reuse_matches_fresh_runs(self):
        from repro.optimizer.driver import prepare

        query = topology_query("cycle", 6)
        prepared = prepare(query)
        for strategy in STRATEGIES:
            reused = optimize(query, strategy, prepared=prepared)
            fresh = optimize(query, strategy)
            assert _fingerprint(reused) == _fingerprint(fresh)
