"""Degradation and adversarial-pruning tests for the vectorized engine.

Two contracts:

* ``engine="vectorized"`` never *fails* for environmental reasons — with
  numpy missing it warns (``RuntimeWarning``) and runs the indexed path;
  with an unsupported strategy/cost-model/hook combination it falls back
  silently.  Results are identical either way.
* EA-Prune's ordered Pareto buckets (the structure the vectorized folds
  replay) agree with the seed's pairwise scan on adversarial inputs:
  exact cost ties, equal FD signatures, multi-plan eviction slices.
"""

import dataclasses
import random
import subprocess
import sys
import textwrap
import warnings
from pathlib import Path

import pytest

from repro.optimizer import OptimizerConfig, OptimizerHooks, optimize
from repro.optimizer.driver import prepare
from repro.optimizer.planinfo import PlanBuilder
from repro.optimizer.strategies import EaPruneStrategy
from repro.optimizer.costmodel import CoutModel
from repro.workload import topology_query

SRC_DIR = str(Path(__file__).resolve().parents[2] / "src")


def _cfg(engine, strategy="ea-prune"):
    return OptimizerConfig(strategy=strategy, engine=engine, cache_capacity=None)


class TestNumpyMissingFallback:
    def test_monkeypatched_numpy_absence_warns_and_matches(self, monkeypatch):
        from repro.hypergraph import vectorized as vector_graph
        from repro.optimizer import vectorized as vector_core

        monkeypatch.setattr(vector_core, "_np", None)
        monkeypatch.setattr(vector_graph, "_np", None)
        query = topology_query("cycle", 5)
        with pytest.warns(RuntimeWarning, match="requires numpy"):
            degraded = optimize(query, config=_cfg("vectorized"))
        baseline = optimize(query, config=_cfg("indexed"))
        assert degraded.cost == baseline.cost
        assert repr(degraded.plan) == repr(baseline.plan)
        assert degraded.stats["engine_vectorized"] == 0
        assert degraded.stats["vectorized.fallback"] == 1
        assert degraded.stats["vectorized.no_numpy"] == 1

    def test_subprocess_with_numpy_import_blocked(self):
        """End-to-end: a fresh interpreter where ``import numpy`` raises
        still serves ``engine="vectorized"`` with a warning, and the cost
        matches an in-process indexed run bit for bit."""
        script = textwrap.dedent(
            """
            import sys, warnings

            class _Block:
                def find_spec(self, name, path=None, target=None):
                    if name == "numpy" or name.startswith("numpy."):
                        raise ImportError("numpy blocked for fallback test")
                    return None

            sys.meta_path.insert(0, _Block())
            sys.path.insert(0, sys.argv[1])

            from repro.optimizer import OptimizerConfig, optimize
            from repro.workload import topology_query

            with warnings.catch_warnings(record=True) as caught:
                warnings.simplefilter("always")
                result = optimize(
                    topology_query("star", 5),
                    config=OptimizerConfig(
                        strategy="ea-prune", engine="vectorized", cache_capacity=None
                    ),
                )
            warned = any(
                issubclass(w.category, RuntimeWarning) and "requires numpy" in str(w.message)
                for w in caught
            )
            print(f"warned={warned} cost={result.cost!r}")
            """
        )
        proc = subprocess.run(
            [sys.executable, "-c", script, SRC_DIR],
            capture_output=True,
            text=True,
            timeout=120,
        )
        assert proc.returncode == 0, proc.stderr
        baseline = optimize(topology_query("star", 5), config=_cfg("indexed"))
        assert proc.stdout.strip() == f"warned=True cost={baseline.cost!r}"


class TestUnsupportedFallback:
    def test_unsupported_strategy_falls_back_silently(self):
        query = topology_query("chain", 5)
        with warnings.catch_warnings():
            warnings.simplefilter("error")  # any warning would fail the test
            degraded = optimize(query, config=_cfg("vectorized", strategy="ea-all"))
        baseline = optimize(query, config=_cfg("indexed", strategy="ea-all"))
        assert degraded.cost == baseline.cost
        assert degraded.stats["engine_vectorized"] == 0
        assert degraded.stats["vectorized.fallback"] == 1
        assert degraded.stats["vectorized.unsupported"] == 1

    def test_on_plan_hook_falls_back_silently(self):
        query = topology_query("chain", 5)
        seen = []
        hooks = OptimizerHooks(on_plan=seen.append)
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            degraded = optimize(query, config=_cfg("vectorized"), hooks=hooks)
        assert degraded.stats["engine_vectorized"] == 0
        assert seen  # the hook actually fired on the fallback path
        baseline = optimize(query, config=_cfg("indexed"))
        assert degraded.cost == baseline.cost

    def test_supported_run_flags_vectorized(self):
        pytest.importorskip("numpy")
        result = optimize(topology_query("chain", 5), config=_cfg("vectorized"))
        assert result.stats["engine_vectorized"] == 1
        assert "vectorized.fallback" not in result.stats
        assert result.stats["vectorized.shape_probes"] > 0


# -- adversarial Pareto-bucket tests ----------------------------------------


def _base_plans():
    """Real leaves from a prepared query — the raw material the crafted
    cost/cardinality/key variants below derive from."""
    query = topology_query("chain", 4)
    prepared = prepare(query)
    builder = PlanBuilder(query, cost_model=CoutModel())
    return [builder.leaf(v) for v in range(4)]


def _variant(plan, cost, card, keys=None, duplicate_free=None):
    changes = {"cost": float(cost), "cardinality": float(card)}
    if keys is not None:
        changes["keys"] = keys
    if duplicate_free is not None:
        changes["duplicate_free"] = duplicate_free
    return dataclasses.replace(plan, **changes)


def _survivors(strategy_factory, plans):
    """Feed *plans* through a fresh bucket, return surviving (cost, card)
    multiset plus the survivor identity set."""
    strategy = strategy_factory()
    bucket = strategy.new_bucket()
    for plan in plans:
        strategy.insert(bucket, plan)
    if isinstance(bucket, list):
        survivors = list(bucket)
    else:
        survivors = [p for _sig, frontier in bucket.frontiers.items() for p in frontier[2]]
    return sorted((p.cost, p.cardinality) for p in survivors), set(map(id, survivors))


def _assert_ordered_matches_scan(criteria, plans):
    ordered = _survivors(lambda: EaPruneStrategy(criteria, ordered=True), plans)
    scan = _survivors(lambda: EaPruneStrategy(criteria, ordered=False), plans)
    assert ordered == scan, criteria


class TestAdversarialPruneBuckets:
    @pytest.mark.parametrize("criteria", ["full", "cost-card", "cost-only"])
    def test_exact_cost_ties(self, criteria):
        base = _base_plans()[0]
        plans = [
            _variant(base, 100.0, 50.0),
            _variant(base, 100.0, 50.0),  # exact duplicate: ties dominate
            _variant(base, 100.0, 40.0),
            _variant(base, 100.0, 60.0),
            _variant(base, 90.0, 50.0),
        ]
        _assert_ordered_matches_scan(criteria, plans)

    @pytest.mark.parametrize("criteria", ["full", "cost-card", "cost-only"])
    def test_eviction_slices(self, criteria):
        base = _base_plans()[0]
        # An ascending staircase, then one plan dominating a contiguous
        # slice of it — the ordered bucket must evict exactly that slice.
        plans = [_variant(base, 10.0 + i, 100.0 - i) for i in range(8)]
        plans.append(_variant(base, 12.0, 10.0))  # dominates costs 12..17
        plans.append(_variant(base, 5.0, 200.0))  # incomparable, survives
        _assert_ordered_matches_scan(criteria, plans)

    def test_equal_fd_signatures_across_relations(self):
        # Same keys/equiv/duplicate-free triple on different relations:
        # signatures intern to one entry, so dominance applies across them.
        a, b = _base_plans()[:2]
        shared_keys = (frozenset({"k"}),)
        plans = [
            _variant(a, 10.0, 5.0, keys=shared_keys, duplicate_free=False),
            _variant(b, 10.0, 5.0, keys=shared_keys, duplicate_free=False),
            _variant(a, 8.0, 4.0, keys=shared_keys, duplicate_free=False),
        ]
        _assert_ordered_matches_scan("full", plans)

    def test_incomparable_fd_signatures_coexist(self):
        base = _base_plans()[0]
        keyed = _variant(base, 10.0, 5.0)
        keyless = _variant(base, 5.0, 3.0, keys=(), duplicate_free=False)
        _assert_ordered_matches_scan("full", [keyed, keyless])
        # The keyless plan is cheaper but offers no keys: under "full"
        # neither dominates, so both survive in both implementations.
        survivors, _ = _survivors(
            lambda: EaPruneStrategy("full", ordered=True), [keyed, keyless]
        )
        assert survivors == [(5.0, 3.0), (10.0, 5.0)]

    @pytest.mark.parametrize("criteria", ["full", "cost-card", "cost-only"])
    @pytest.mark.parametrize("seed", range(5))
    def test_randomized_tie_heavy_sequences(self, criteria, seed):
        rng = random.Random(seed * 33 + 7)
        bases = _base_plans()
        key_pool = [None, (), (frozenset({"k"}),)]
        plans = []
        for _ in range(120):
            base = rng.choice(bases)
            # Tiny value pools force frequent exact ties in both axes.
            plans.append(
                _variant(
                    base,
                    rng.choice([10.0, 20.0, 30.0, 40.0]),
                    rng.choice([1.0, 2.0, 3.0]),
                    keys=rng.choice(key_pool),
                    duplicate_free=rng.random() < 0.3,
                )
            )
        _assert_ordered_matches_scan(criteria, plans)
