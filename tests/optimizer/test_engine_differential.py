"""Cross-engine differential harness: indexed == reference == vectorized.

The three driver engines are required to be *observationally identical*
— same best plan (shape and cost), same csg-cmp-pair emission order,
same candidate counts — on every query.  This suite generates seeded
workloads (the four classic topologies, cycle/clique floating closing
edges, and fully random hypergraphs up to n=12) and diffs the engines
pairwise across every strategy and every EA-Prune pruning criteria.

Two tiers: a ~50-case slice that runs in tier-1, and the exhaustive
matrix marked ``slow`` (``--runslow`` / ``-m slow``; see
tests/conftest.py).  The vectorized engine silently falls back to the
indexed path for unsupported shapes — the fingerprints still must match,
so fallback cases are covered rather than skipped.
"""

import random
import re
import warnings

import pytest

from repro.optimizer import OptimizerConfig, OptimizerHooks, optimize
from repro.optimizer.strategies import EaPruneStrategy
from repro.plans.render import render_plan
from repro.workload import generate_query, topology_query

ENGINES = ("indexed", "reference", "vectorized")
STRATEGIES = ("dphyp", "ea-prune", "h1", "h2")
CRITERIA = ("full", "cost-card", "cost-only")

_SUFFIX = re.compile(r"#g(\d+)")


def normalize_suffixes(rendered):
    """Rename builder-generated ``#g<n>`` columns by first appearance.

    The concrete counter values depend on how many candidate plans each
    engine's code path built along the way (the reference path builds
    group columns in a different order than the memoised one); the plan
    *shape* — which columns are shared where — is what must agree.
    """
    seen = {}

    def rank(match):
        return "#g" + str(seen.setdefault(match.group(1), len(seen)))

    return _SUFFIX.sub(rank, rendered)


def run_engine(query, strategy, engine, factor=1.03):
    """One optimizer run returning the observational fingerprint.

    The fingerprint is everything the engines promise to agree on: the
    final plan's cost and rendered shape, the ccp emission order (via
    ``on_ccp``), and the candidate/table counts.  Engine-internal
    counters (graph scans, lane statistics) legitimately differ and stay
    out.
    """
    ccps = []
    hooks = OptimizerHooks(on_ccp=lambda s1, s2: ccps.append((s1, s2)))
    config = OptimizerConfig(
        strategy=strategy, factor=factor, engine=engine, cache_capacity=None
    )
    with warnings.catch_warnings():
        # A numpy-less environment warns on vectorized fallback; the
        # differential contract holds regardless.
        warnings.simplefilter("ignore", RuntimeWarning)
        result = optimize(query, config=config)
    return {
        "cost": result.cost,
        "plan": normalize_suffixes(render_plan(result.plan.node)),
        "ccp_order": tuple(ccps),
        "ccp_count": result.ccp_count,
        "plans_built": result.plans_built,
        "table_sizes": result.table_sizes,
    }


def assert_engines_agree(query, strategy, factor=1.03, context=()):
    baseline = run_engine(query, strategy, ENGINES[0], factor)
    for engine in ENGINES[1:]:
        other = run_engine(query, strategy, engine, factor)
        assert other == baseline, (engine, *context)


def _random_query(seed, max_relations=9):
    rng = random.Random(seed)
    return generate_query(rng.randint(3, max_relations), rng)


class TestTopologySlice:
    """Tier-1: the four topologies at two sizes, every strategy."""

    @pytest.mark.parametrize("topology", ["chain", "cycle", "star", "clique"])
    @pytest.mark.parametrize("n", [4, 6])
    def test_topologies_all_strategies(self, topology, n):
        query = topology_query(topology, n)
        for strategy in STRATEGIES:
            assert_engines_agree(query, strategy, context=(topology, n, strategy))

    @pytest.mark.parametrize("criteria", CRITERIA)
    def test_pruning_criteria_on_topologies(self, criteria):
        for topology in ("cycle", "star"):
            query = topology_query(topology, 5)
            assert_engines_agree(
                query, EaPruneStrategy(criteria), context=(topology, criteria)
            )


class TestRandomSlice:
    """Tier-1: seeded random hypergraphs (mixed operators, floating
    edges via the generator's cross-predicates), every strategy."""

    @pytest.mark.parametrize("seed", range(6))
    def test_random_all_strategies(self, seed):
        query = _random_query(seed * 7919 + 11)
        for strategy in STRATEGIES:
            assert_engines_agree(query, strategy, context=(seed, strategy))

    @pytest.mark.parametrize("seed", range(3))
    def test_random_pruning_criteria(self, seed):
        query = _random_query(seed * 104729 + 5)
        for criteria in CRITERIA:
            assert_engines_agree(
                query, EaPruneStrategy(criteria), context=(seed, criteria)
            )

    def test_h2_factor_variants(self):
        query = _random_query(424243)
        for factor in (1.0, 1.05, 1.5):
            assert_engines_agree(query, "h2", factor=factor, context=(factor,))


@pytest.mark.slow
class TestExhaustiveMatrix:
    """The full differential matrix — sizes up to n=12 where the
    strategy's complexity permits, every strategy × criteria."""

    @pytest.mark.parametrize("topology", ["chain", "cycle", "star", "clique"])
    @pytest.mark.parametrize("n", [4, 5, 6, 7, 8, 10, 12])
    def test_topology_matrix(self, topology, n):
        if topology == "clique" and n > 7:
            pytest.skip("clique DP beyond n=7 is minutes per engine")
        if topology in ("star", "cycle") and n > 10:
            pytest.skip("star/cycle EA-Prune beyond n=10 is minutes per engine")
        query = topology_query(topology, n)
        strategies = list(STRATEGIES)
        if (topology, n) in (("star", 10), ("cycle", 10), ("clique", 7)):
            strategies.remove("ea-prune")  # heuristics scale; full DP does not
        for strategy in strategies:
            assert_engines_agree(query, strategy, context=(topology, n, strategy))

    @pytest.mark.parametrize("seed", range(40))
    def test_random_matrix(self, seed):
        query = _random_query(seed, max_relations=12)
        for strategy in STRATEGIES:
            assert_engines_agree(query, strategy, context=(seed, strategy))
        for criteria in CRITERIA:
            assert_engines_agree(
                query, EaPruneStrategy(criteria), context=(seed, criteria)
            )
