"""Recost-by-replay: bit-for-bit reproduction and the stale-serve bound.

The load-bearing invariant of the plan lifecycle: replaying a cached
plan's operator tree through a fresh :class:`PlanBuilder` under an
*unchanged* statistics snapshot must reproduce the cached cost exactly
(``==`` on floats — same arithmetic in the same order), for plans
produced by every engine and strategy.  Anything less and a statistics
refresh with ``cardinality_factor=1.0`` would spuriously re-plan the
whole cache.
"""

import warnings

import pytest

from repro.optimizer import OptimizerConfig, optimize
from repro.optimizer.recost import (
    RecostError,
    evaluate_stale,
    recost,
    recosted_result,
    refresh_query_stats,
)
from repro.sql import parse_query
from repro.sql.catalog import Catalog, TableStats


SQLS = [
    "SELECT ns.n_name, count(*) AS cnt FROM nation ns "
    "JOIN supplier s ON ns.n_nationkey = s.s_nationkey GROUP BY ns.n_name",
    "SELECT count(*) AS cnt FROM supplier s, nation n, customer c "
    "WHERE s.s_nationkey = n.n_nationkey AND n.n_nationkey = c.c_nationkey",
    "SELECT c.c_custkey, sum(l.l_extendedprice) AS revenue "
    "FROM customer c "
    "JOIN orders o ON c.c_custkey = o.o_custkey "
    "JOIN lineitem l ON o.o_orderkey = l.l_orderkey "
    "GROUP BY c.c_custkey",
    "SELECT r.r_name, count(*) AS cnt FROM region r "
    "JOIN nation n ON r.r_regionkey = n.n_regionkey "
    "JOIN supplier s ON n.n_nationkey = s.s_nationkey GROUP BY r.r_name",
]
ENGINES = ["indexed", "reference", "vectorized"]
STRATEGIES = ["dphyp", "ea-all", "ea-prune", "h1", "h2"]


def fresh_query(sql: str, catalog=None):
    return parse_query(sql, catalog if catalog is not None else Catalog.from_tpch())


class TestBitForBitReplay:
    @pytest.mark.parametrize("engine", ENGINES)
    @pytest.mark.parametrize("sql", SQLS)
    def test_replay_reproduces_cost_across_engines(self, engine, sql):
        query = fresh_query(sql)
        config = OptimizerConfig(engine=engine)
        with warnings.catch_warnings():
            # engine="vectorized" warns and falls back when numpy is
            # absent; the replay invariant must hold either way.
            warnings.simplefilter("ignore")
            result = optimize(query, config=config)
        replayed = recost(
            query, result.plan.node, cost_model=config.resolve_cost_model()
        )
        assert replayed.cost == result.cost  # bit-for-bit, not approx
        assert replayed.cardinality == result.plan.cardinality
        assert type(replayed.node) is type(result.plan.node)

    @pytest.mark.parametrize("strategy", STRATEGIES)
    @pytest.mark.parametrize("sql", SQLS)
    def test_replay_reproduces_cost_across_strategies(self, strategy, sql):
        query = fresh_query(sql)
        config = OptimizerConfig(strategy=strategy)
        result = optimize(query, config=config)
        replayed = recost(
            query, result.plan.node, cost_model=config.resolve_cost_model()
        )
        assert replayed.cost == result.cost

    def test_foreign_plan_is_a_replay_error(self):
        donor = optimize(fresh_query(SQLS[0]))
        other = fresh_query(SQLS[2])
        with pytest.raises(RecostError):
            recost(other, donor.plan.node)


class TestRefreshQueryStats:
    def drifted_catalog(self, factor: float) -> Catalog:
        catalog = Catalog.from_tpch()
        old = catalog.lookup("supplier")
        catalog.update_stats(
            "supplier",
            TableStats(
                name=old.name,
                columns=old.columns,
                cardinality=old.cardinality * factor,
                distinct={
                    column: min(value * factor, old.cardinality * factor)
                    for column, value in old.distinct.items()
                },
                keys=old.keys,
            ),
        )
        return catalog

    def test_refresh_rereads_cardinalities(self):
        catalog = self.drifted_catalog(4.0)
        stale = fresh_query(SQLS[0])  # parsed against undrifted stats
        refreshed = refresh_query_stats(stale, catalog)
        by_name = {rel.source_table: rel for rel in refreshed.relations}
        assert by_name["supplier"].cardinality == catalog.lookup("supplier").cardinality
        # Untouched relations keep their statistics.
        assert by_name["nation"].cardinality == 25.0

    def test_refresh_changes_the_replayed_cost(self):
        result = optimize(fresh_query(SQLS[0]))
        refreshed = refresh_query_stats(
            fresh_query(SQLS[0]), self.drifted_catalog(4.0)
        )
        replayed = recost(refreshed, result.plan.node)
        assert replayed.cost > result.cost

    def test_missing_table_keeps_old_statistics(self):
        catalog = Catalog()  # knows none of the TPC-H tables
        query = fresh_query(SQLS[0])
        refreshed = refresh_query_stats(query, catalog)
        assert [rel.cardinality for rel in refreshed.relations] == [
            rel.cardinality for rel in query.relations
        ]
        assert [edge.selectivity for edge in refreshed.edges] == [
            edge.selectivity for edge in query.edges
        ]

    def test_refresh_rederives_edge_selectivities(self):
        # Drift regression: a stale hand-built query refreshed against a
        # drifted catalog must converge to the selectivities a full SQL
        # re-bind would derive — not keep the frozen originals.
        catalog = self.drifted_catalog(4.0)
        stale = fresh_query(SQLS[1])
        rebound = fresh_query(SQLS[1], catalog)
        refreshed = refresh_query_stats(stale, catalog)
        assert any(
            old.selectivity != new.selectivity
            for old, new in zip(stale.edges, refreshed.edges)
        ), "drift must move at least one selectivity"
        for new, expected in zip(refreshed.edges, rebound.edges):
            assert new.selectivity == pytest.approx(expected.selectivity)

    def test_refresh_rederives_local_predicate_selectivities(self):
        sql = (
            "SELECT count(*) AS cnt FROM supplier s, nation n "
            "WHERE s.s_nationkey = n.n_nationkey AND s.s_acctbal = 100"
        )
        catalog = self.drifted_catalog(4.0)
        stale = fresh_query(sql)
        rebound = fresh_query(sql, catalog)
        refreshed = refresh_query_stats(stale, catalog)
        assert refreshed.local_predicates.keys() == rebound.local_predicates.keys()
        changed = False
        for vertex, (_, selectivity) in refreshed.local_predicates.items():
            expected = rebound.local_predicates[vertex][1]
            assert selectivity == pytest.approx(expected)
            changed = changed or selectivity != stale.local_predicates[vertex][1]
        assert changed

    def test_refresh_unchanged_stats_is_bit_for_bit(self):
        # The stale-while-revalidate invariant: refreshing under identical
        # statistics must not perturb a single float, so the subsequent
        # replay reproduces the cached cost exactly.
        catalog = Catalog.from_tpch()
        query = fresh_query(SQLS[2], catalog)
        refreshed = refresh_query_stats(query, catalog)
        assert [e.selectivity for e in refreshed.edges] == [
            e.selectivity for e in query.edges
        ]
        result = optimize(query)
        assert recost(refreshed, result.plan.node).cost == result.cost

    def test_drifted_selectivity_changes_replayed_cost(self):
        result = optimize(fresh_query(SQLS[1]))
        refreshed = refresh_query_stats(fresh_query(SQLS[1]), self.drifted_catalog(4.0))
        assert recost(refreshed, result.plan.node).cost != result.cost


class TestEvaluateStale:
    def test_unchanged_stats_serve_within_bound(self):
        query = fresh_query(SQLS[0])
        cached = optimize(query)
        decision = evaluate_stale(query, cached, config=OptimizerConfig())
        assert decision.serve is True
        assert decision.reason == "within_bound"
        assert decision.recost_cost == cached.cost  # the bit-for-bit replay
        assert decision.plan is not None

    def test_heavy_drift_forces_replan(self):
        # A 16x lineitem blow-up makes the cached join order six times
        # worse than the cheap H1 replan — past the default 2.0 bound,
        # so the entry must be queued for full re-optimization.
        cached = optimize(fresh_query(SQLS[2]))
        catalog = Catalog.from_tpch()
        old = catalog.lookup("lineitem")
        catalog.update_stats(
            "lineitem",
            TableStats(
                name=old.name,
                columns=old.columns,
                cardinality=old.cardinality * 16.0,
                distinct={
                    column: min(value * 16.0, old.cardinality * 16.0)
                    for column, value in old.distinct.items()
                },
                keys=old.keys,
            ),
        )
        drifted = fresh_query(SQLS[2], catalog)  # the re-parse path
        decision = evaluate_stale(drifted, cached, config=OptimizerConfig())
        assert decision.serve is False
        assert decision.reason == "over_bound"
        assert decision.recost_cost > decision.bound_factor * decision.bound_cost
        assert decision.bound_cost > 0

    def test_unreplayable_plan_reports_replay_failed(self):
        donor = optimize(fresh_query(SQLS[0]))
        other = fresh_query(SQLS[2])
        decision = evaluate_stale(other, donor, config=OptimizerConfig())
        assert decision.serve is False
        assert decision.reason == "replay_failed"
        assert decision.recost_cost is None


class TestRecostedResult:
    def test_marks_provenance(self):
        query = fresh_query(SQLS[0])
        cached = optimize(query)
        decision = evaluate_stale(query, cached, config=OptimizerConfig())
        refreshed = recosted_result(cached, decision.plan, decision.elapsed_seconds)
        assert refreshed.cost == cached.cost
        assert refreshed.cache_hit is False
        assert refreshed.degraded is False
        assert refreshed.stats["recosted"] == 1
        # The original result is untouched (replace, not mutation).
        assert "recosted" not in cached.stats
