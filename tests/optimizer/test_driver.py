"""Driver-level tests: strategy invariants on random workloads.

These encode the paper's analytical claims:

* EA-All and EA-Prune find plans of identical cost (pruning is
  optimality-preserving, Sec. 4.6),
* no strategy beats EA-All (it enumerates the complete search space),
* DPhyp never beats the eager strategies (its search space is a subset),
* H1/H2 stay between EA and DPhyp.
"""

import random

import pytest

from repro.optimizer import optimize
from repro.workload import WorkloadConfig, generate_query

STRATEGIES = ["dphyp", "ea-all", "ea-prune", "h1", "h2"]


def costs_for(seed: int, n: int, config=None):
    query = generate_query(n, random.Random(seed), config)
    return {s: optimize(query, s).cost for s in STRATEGIES}


class TestStrategyInvariants:
    @pytest.mark.parametrize("seed", range(12))
    def test_pruning_preserves_optimality(self, seed):
        rng = random.Random(seed)
        costs = costs_for(seed * 31, rng.randint(2, 6))
        assert costs["ea-prune"] == pytest.approx(costs["ea-all"], rel=1e-9)

    @pytest.mark.parametrize("seed", range(12))
    def test_ea_all_is_lower_bound(self, seed):
        rng = random.Random(seed + 100)
        costs = costs_for(seed * 37 + 1, rng.randint(2, 6))
        for strategy in ("dphyp", "h1", "h2"):
            assert costs[strategy] >= costs["ea-all"] * (1 - 1e-9)

    @pytest.mark.parametrize("seed", range(12))
    def test_dphyp_is_upper_bound_for_heuristics(self, seed):
        # H1/H2 explore a superset of DPhyp's space and fall back to the
        # lazy plan shape, but their greedy single-plan policy can commit
        # to locally-cheaper subplans; on average they win big.  We assert
        # the weaker per-query bound that actually holds: heuristics never
        # exceed DPhyp by more than the documented outlier factor.
        rng = random.Random(seed + 200)
        costs = costs_for(seed * 41 + 2, rng.randint(2, 6))
        assert costs["h1"] <= costs["dphyp"] * 15
        assert costs["h2"] <= costs["dphyp"] * 15

    def test_inner_only_workload(self):
        config = WorkloadConfig(inner_only=True)
        for seed in range(6):
            query = generate_query(4, random.Random(seed), config)
            costs = {s: optimize(query, s).cost for s in STRATEGIES}
            assert costs["ea-prune"] == pytest.approx(costs["ea-all"], rel=1e-9)


class TestResultMetadata:
    def test_result_fields(self):
        query = generate_query(4, random.Random(1))
        result = optimize(query, "ea-prune")
        assert result.strategy == "ea-prune"
        assert result.elapsed_seconds > 0
        assert result.ccp_count > 0
        assert result.plans_built >= result.ccp_count
        assert result.cost == result.plan.cost

    def test_single_relation_query(self):
        query = generate_query(1, random.Random(2))
        result = optimize(query, "ea-prune")
        assert result.plan.rel_set == 1

    def test_h2_factor_parameter(self):
        query = generate_query(5, random.Random(3))
        r1 = optimize(query, "h2", factor=1.01)
        r2 = optimize(query, "h2", factor=1.5)
        assert r1.cost > 0 and r2.cost > 0


class TestSearchSpaceSize:
    def test_ea_all_builds_more_plans_than_dphyp(self):
        query = generate_query(6, random.Random(4))
        lazy = optimize(query, "dphyp")
        eager = optimize(query, "ea-all")
        assert eager.plans_built > lazy.plans_built

    def test_pruning_reduces_table_sizes(self):
        query = generate_query(7, random.Random(5))
        full = optimize(query, "ea-all")
        pruned = optimize(query, "ea-prune")
        total_full = sum(full.table_sizes.values())
        total_pruned = sum(pruned.table_sizes.values())
        assert total_pruned <= total_full
