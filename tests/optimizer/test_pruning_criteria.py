"""Tests for the ablation knob on EA-Prune and count-column reuse."""

import random

import pytest

from repro.optimizer import optimize
from repro.optimizer.strategies import EaPruneStrategy
from repro.workload import generate_query


class TestCriteriaKnob:
    def test_invalid_criteria_rejected(self):
        with pytest.raises(ValueError):
            EaPruneStrategy("cost-fd")

    def test_names_reflect_criteria(self):
        assert EaPruneStrategy().name == "ea-prune"
        assert EaPruneStrategy("cost-only").name == "ea-prune[cost-only]"

    @pytest.mark.parametrize("seed", range(6))
    def test_weaker_criteria_never_beat_full(self, seed):
        rng = random.Random(seed * 131)
        query = generate_query(rng.randint(3, 5), rng)
        full = optimize(query, EaPruneStrategy("full")).cost
        for criteria in ("cost-only", "cost-card"):
            weaker = optimize(query, EaPruneStrategy(criteria)).cost
            assert weaker >= full * (1 - 1e-9)

    @pytest.mark.parametrize("seed", range(6))
    def test_weaker_criteria_prune_harder(self, seed):
        rng = random.Random(seed * 137 + 1)
        query = generate_query(rng.randint(4, 6), rng)
        full = optimize(query, EaPruneStrategy("full"))
        cost_only = optimize(query, EaPruneStrategy("cost-only"))
        assert sum(cost_only.table_sizes.values()) <= sum(full.table_sizes.values())


class TestCountColumnReuse:
    def test_count_star_inner_column_is_reused(self):
        """Sec. 3.1.1: a pushed grouping whose vector already contains a
        count(*) stage reuses it as the ⊗ count column."""
        from repro.aggregates import count_star, sum_
        from repro.aggregates.vector import AggItem, AggVector
        from repro.algebra.expressions import Attr
        from repro.optimizer.planinfo import PlanBuilder
        from repro.query.spec import JoinEdge, Query, RelationInfo
        from repro.query.tree import TreeLeaf, TreeNode
        from repro.rewrites.pushdown import OpKind

        relations = [
            RelationInfo("r0", ("r0.id", "r0.g"), 10.0, {}, (frozenset({"r0.id"}),)),
            RelationInfo("r1", ("r1.id", "r1.a"), 10.0, {}, (frozenset({"r1.id"}),)),
        ]
        edges = [JoinEdge(0, OpKind.INNER, Attr("r0.id").eq(Attr("r1.id")), 0.1)]
        tree = TreeNode(0, TreeLeaf(0), TreeLeaf(1))
        # count(*) anchors at vertex 0, sum(r1.a) at vertex 1: grouping the
        # r0 side decomposes count(*) into an inner count(*) column which
        # doubles as the ⊗ count for sum(r1.a).
        aggs = AggVector([AggItem("cnt", count_star()), AggItem("s", sum_("r1.a"))])
        query = Query(relations, edges, tree, ("r0.g",), aggs)
        builder = PlanBuilder(query)
        grouped = builder.group(builder.leaf(0), frozenset({"r0.g", "r0.id"}))
        count_star_columns = [
            item.name
            for item in grouped.node.vector
            if item.call.kind.name == "COUNT_STAR"
        ]
        assert len(count_star_columns) == 1  # reused, not duplicated
        assert grouped.scale_cols == (count_star_columns[0],)
