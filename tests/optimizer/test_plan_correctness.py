"""End-to-end correctness: optimizer output ≡ canonical plan on real data.

This is the repository's strongest integration test.  For random queries
(covering inner/outer/semi/anti/group joins, avg and distinct aggregates,
multi-level grouping pushdown) and random micro databases, the plan chosen
by *every* strategy must produce exactly the canonical result — which
simultaneously validates the Sec. 3 equivalences, the conflict detector,
the aggregation-state machinery and top-grouping elimination.
"""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.exec import execute
from repro.optimizer import optimize
from repro.query.canonical import canonical_plan
from repro.workload import WorkloadConfig, generate_database, generate_query

STRATEGIES = ["dphyp", "ea-all", "ea-prune", "h1", "h2"]


@settings(max_examples=25, deadline=None)
@given(seed=st.integers(min_value=0, max_value=100_000))
def test_all_strategies_produce_canonical_results(seed):
    rng = random.Random(seed)
    n = rng.randint(2, 5)
    query = generate_query(n, rng)
    database = generate_database(query, rng)
    canonical = execute(canonical_plan(query), database)
    for strategy in STRATEGIES:
        result = optimize(query, strategy)
        optimized = execute(result.plan.node, database)
        assert optimized == canonical, f"strategy {strategy} diverged (seed {seed})"


@settings(max_examples=15, deadline=None)
@given(seed=st.integers(min_value=0, max_value=100_000))
def test_inner_only_workloads(seed):
    """The classic Yan-Larson setting: inner joins only."""
    rng = random.Random(seed)
    query = generate_query(rng.randint(2, 6), rng, WorkloadConfig(inner_only=True))
    database = generate_database(query, rng)
    canonical = execute(canonical_plan(query), database)
    for strategy in ("ea-prune", "h2"):
        result = optimize(query, strategy)
        assert execute(result.plan.node, database) == canonical


@settings(max_examples=15, deadline=None)
@given(seed=st.integers(min_value=0, max_value=100_000))
def test_outer_join_heavy_workloads(seed):
    """The paper's novelty: groupings moved through outerjoins."""
    rng = random.Random(seed)
    from repro.rewrites.pushdown import OpKind

    config = WorkloadConfig(
        operator_weights={
            OpKind.INNER: 0.2,
            OpKind.LEFT_OUTER: 0.4,
            OpKind.FULL_OUTER: 0.4,
        }
    )
    query = generate_query(rng.randint(2, 5), rng, config)
    database = generate_database(query, rng)
    canonical = execute(canonical_plan(query), database)
    for strategy in ("ea-prune", "h1"):
        result = optimize(query, strategy)
        assert execute(result.plan.node, database) == canonical


@pytest.mark.parametrize("seed", range(8))
def test_larger_databases(seed):
    """Bigger random databases shake out group-collision edge cases."""
    rng = random.Random(seed * 7919)
    query = generate_query(rng.randint(2, 4), rng)
    database = generate_database(query, rng, max_rows=12)
    canonical = execute(canonical_plan(query), database)
    result = optimize(query, "ea-prune")
    assert execute(result.plan.node, database) == canonical
