"""Perf regression guard: indexed H1/H2 must not lose to reference scans.

The ROADMAP noted the heuristics sometimes lost to the reference engine
on small graphs — the per-call index machinery (orientation-list scans,
memo keys) cost more than the tiny runs it was amortised over.  The
hypergraph now serves simple-only graphs (every bench topology) straight
from the bitmask adjacency, making that crossover explicit; this test
pins the outcome: indexed H1/H2 at most 1.5× the reference engine's
time on the bench topologies.

Timing discipline: interleaved min-of-N per engine (min is the robust
statistic for "how fast can this go"), sizes chosen so a run takes tens
of milliseconds (big enough to dwarf timer noise, small enough for
tier-1), and one slower re-measure before declaring failure.
"""

import time
import warnings

import pytest

from repro.optimizer import OptimizerConfig, optimize, prepare
from repro.workload import topology_query

#: topology → size: the smallest bench sizes where a heuristic run is
#: comfortably above timer resolution on slow CI machines.
CASES = {"chain": 8, "cycle": 7, "star": 6, "clique": 5}
MAX_RATIO = 1.5


def _best_of(query, prepared, config, reps):
    best = float("inf")
    for _ in range(reps):
        start = time.perf_counter()
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", RuntimeWarning)
            optimize(query, prepared=prepared, config=config)
        best = min(best, time.perf_counter() - start)
    return best


def _measure_ratio(topology, n, strategy, reps):
    query = topology_query(topology, n)
    prepared = prepare(query)  # shared pre-pass: time the engines, not detect()
    indexed_cfg = OptimizerConfig(strategy=strategy, engine="indexed", cache_capacity=None)
    reference_cfg = OptimizerConfig(
        strategy=strategy, engine="reference", cache_capacity=None
    )
    # Warm both paths (imports, leaf statistics, memo tables), then
    # interleave so frequency scaling and background load hit both.
    _best_of(query, prepared, indexed_cfg, 1)
    _best_of(query, prepared, reference_cfg, 1)
    indexed = reference = float("inf")
    for _ in range(reps):
        indexed = min(indexed, _best_of(query, prepared, indexed_cfg, 1))
        reference = min(reference, _best_of(query, prepared, reference_cfg, 1))
    return indexed / reference


class TestHeuristicsNeverLoseToReference:
    @pytest.mark.parametrize("topology,n", sorted(CASES.items()))
    @pytest.mark.parametrize("strategy", ["h1", "h2"])
    def test_indexed_within_ratio_of_reference(self, topology, n, strategy):
        ratio = _measure_ratio(topology, n, strategy, reps=3)
        if ratio > MAX_RATIO:
            # One slower re-measure before failing: a single descheduled
            # run must not fail the suite, a systematic regression must.
            ratio = _measure_ratio(topology, n, strategy, reps=7)
        assert ratio <= MAX_RATIO, (topology, n, strategy, ratio)
