"""Scaled TPC-H generation: determinism, keys, FK plausibility, scaling."""

import pytest

from repro.tpch.datagen import (
    MICRO_ROWS,
    micro_table,
    scaled_counts,
    scaled_dataset,
    scaled_table,
    table_keys,
)
from repro.tpch.schema import TABLES


def test_scaled_counts_sf1_match_schema():
    counts = scaled_counts(1.0)
    for name, spec in TABLES.items():
        assert counts[name] == int(spec.cardinality(1.0))


def test_scaled_counts_fixed_tables_do_not_scale():
    counts = scaled_counts(0.01)
    assert counts["region"] == 5
    assert counts["nation"] == 25
    assert counts["supplier"] == 100


def test_scaled_counts_rejects_out_of_range():
    with pytest.raises(ValueError):
        scaled_counts(0.0)
    with pytest.raises(ValueError):
        scaled_counts(2.0)


def test_scaled_table_deterministic_across_calls():
    a = scaled_table("orders", 0.01)
    b = scaled_table("orders", 0.01)
    assert a.attributes == b.attributes
    for attr in a.attributes:
        assert a.column(attr) == b.column(attr)
    c = scaled_table("orders", 0.01, seed=1)
    assert c.column("o_custkey") != a.column("o_custkey")


def test_scaled_table_primary_keys_unique():
    for name in ("nation", "supplier", "customer", "orders", "partsupp"):
        table = scaled_table(name, 0.01)
        pk = TABLES[name].primary_key
        keys = list(zip(*(table.column(col) for col in pk)))
        assert len(keys) == len(set(keys)), f"{name} primary key collides"


def test_scaled_foreign_keys_mostly_resolve():
    counts = scaled_counts(0.01)
    lineitem = scaled_table("lineitem", 0.01)
    # l_partkey never dangles; l_orderkey may (generator leaves some dangling
    # on purpose) but must stay within the +4 slack window.
    assert all(0 <= v < counts["part"] for v in lineitem.column("l_partkey"))
    assert all(0 <= v < counts["orders"] + 4 for v in lineitem.column("l_orderkey"))


def test_scaled_dataset_shape():
    dataset = scaled_dataset(0.01)
    assert sorted(dataset.tables) == sorted(TABLES)
    assert len(dataset.table("lineitem")) == scaled_counts(0.01)["lineitem"]


def test_micro_table_unchanged_by_counts_parameter():
    # The counts parameter must not perturb the micro generator's output
    # (same rng call sequence with the MICRO_ROWS default).
    table = micro_table("orders")
    assert len(table.rows) == MICRO_ROWS["orders"]
    assert all(0 <= row["orders.o_custkey"] < MICRO_ROWS["customer"] + 4 for row in table.rows)


def test_table_keys_cover_all_tables():
    keys = table_keys()
    assert set(keys) == set(TABLES)
    assert keys["partsupp"] == (frozenset({"ps_partkey", "ps_suppkey"}),)
