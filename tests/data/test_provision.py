"""Dataset spec resolution: ``tpch-sf<scale>`` and directory forms."""

import pytest

from repro.data import dataset_from_spec, write_csv
from repro.data.provision import validate_dataset_spec
from repro.tpch.datagen import scaled_dataset


class TestValidate:
    def test_tpch_spec_normalises(self):
        assert validate_dataset_spec("  TPCH-SF0.01 ") == "TPCH-SF0.01"

    @pytest.mark.parametrize("bad", ["", "   ", "nonsense", "tpch-sf", "tpch-sfx"])
    def test_malformed_specs_rejected(self, bad):
        with pytest.raises(ValueError):
            validate_dataset_spec(bad)

    @pytest.mark.parametrize("scale", ["0", "1.5", "2"])
    def test_out_of_range_scale_rejected(self, scale):
        with pytest.raises(ValueError, match="scale"):
            validate_dataset_spec(f"tpch-sf{scale}")

    def test_missing_directory_rejected(self):
        with pytest.raises(ValueError, match="unknown dataset spec"):
            validate_dataset_spec("/no/such/directory")


class TestResolve:
    def test_tpch_spec_matches_direct_generation(self):
        provisioned = dataset_from_spec("tpch-sf0.001")
        direct = scaled_dataset(0.001)
        assert provisioned.table("nation").to_relation() == direct.table(
            "nation"
        ).to_relation()

    def test_directory_spec_loads_files(self, tmp_path):
        table = scaled_dataset(0.001).table("region")
        write_csv(table, str(tmp_path / "region.csv"))
        dataset = dataset_from_spec(str(tmp_path))
        assert "region" in dataset
        assert dataset.table("region").length == table.length
