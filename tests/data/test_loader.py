"""CSV/Parquet loader units: inference, NULLs, round-trips, gating."""

import os

import pytest

from repro.algebra.values import NULL
from repro.data import (
    HAVE_PYARROW,
    load_csv,
    load_dataset_into,
    load_directory,
    load_file,
    load_parquet,
    write_csv,
)
from repro.data.tables import ColumnTable
from repro.sql.catalog import Catalog


def write(tmp_path, name, text):
    path = tmp_path / name
    path.write_text(text, encoding="utf-8")
    return str(path)


def test_type_inference_and_nulls(tmp_path):
    path = write(tmp_path, "t.csv", "a,b,c,d\n1,1.5,x,\n,2.5,,7\n3,,y,8\n")
    table = load_csv(path)
    assert table.name == "t"
    assert table.column("a") == [1, NULL, 3]
    assert table.column("b") == [1.5, 2.5, NULL]
    assert table.column("c") == ["x", NULL, "y"]
    assert table.column("d") == [NULL, 7, 8]


def test_one_string_cell_keeps_column_textual(tmp_path):
    path = write(tmp_path, "t.csv", "a\n1\n2\noops\n")
    assert load_csv(path).column("a") == ["1", "2", "oops"]


def test_int_column_with_float_cell_becomes_float(tmp_path):
    path = write(tmp_path, "t.csv", "a\n1\n2.5\n")
    assert load_csv(path).column("a") == [1.0, 2.5]


def test_empty_file_rejected(tmp_path):
    path = write(tmp_path, "t.csv", "")
    with pytest.raises(ValueError, match="empty"):
        load_csv(path)


def test_duplicate_header_rejected(tmp_path):
    path = write(tmp_path, "t.csv", "a,a\n1,2\n")
    with pytest.raises(ValueError, match="duplicate"):
        load_csv(path)


def test_ragged_record_rejected(tmp_path):
    path = write(tmp_path, "t.csv", "a,b\n1,2\n3\n")
    with pytest.raises(ValueError, match="line 3"):
        load_csv(path)


def test_csv_roundtrip(tmp_path):
    table = ColumnTable("t", {"x": [1, NULL, 3], "y": ["a", "b", NULL]})
    path = str(tmp_path / "t.csv")
    write_csv(table, path)
    assert load_csv(path).to_relation() == table.to_relation()


def test_load_file_dispatch(tmp_path):
    path = write(tmp_path, "t.csv", "a\n1\n")
    assert load_file(path).column("a") == [1]
    with pytest.raises(ValueError, match="unsupported"):
        load_file(str(tmp_path / "t.json"))


def test_load_directory(tmp_path):
    write(tmp_path, "one.csv", "a\n1\n")
    write(tmp_path, "two.csv", "b\n2\n")
    (tmp_path / "ignored.txt").write_text("x")
    dataset = load_directory(str(tmp_path))
    assert sorted(dataset.tables) == ["one", "two"]
    assert dataset.name == os.path.basename(str(tmp_path))


def test_load_directory_empty(tmp_path):
    with pytest.raises(ValueError, match="no .csv"):
        load_directory(str(tmp_path))


def test_load_dataset_into_registers_measured_stats(tmp_path):
    write(tmp_path, "t.csv", "a,b\n1,x\n1,y\n2,z\n")
    catalog = Catalog()
    dataset = load_dataset_into(
        catalog, str(tmp_path), keys={"t": (frozenset({"a", "b"}),)}
    )
    assert "t" in dataset
    stats = catalog.lookup("t")
    assert stats.cardinality == 3.0
    assert stats.distinct["a"] == 2.0
    assert stats.keys == (frozenset({"a", "b"}),)


@pytest.mark.skipif(HAVE_PYARROW, reason="pyarrow installed: gate inactive")
def test_parquet_gated_without_pyarrow():
    with pytest.raises(RuntimeError, match="pyarrow"):
        load_parquet("anything.parquet")
