"""ColumnTable/Dataset units: views, conversion, resolution, stats."""

import pytest

from repro.algebra.relation import Relation
from repro.algebra.values import NULL
from repro.data.tables import ColumnTable, Dataset
from repro.exec import run_plan
from repro.plans.nodes import ScanNode
from repro.sql.catalog import Catalog

NATION = ColumnTable(
    "nation",
    {
        "n_nationkey": [0, 1, 2],
        "n_name": ["A", "B", "C"],
        "n_regionkey": [0, 0, NULL],
    },
)


def test_ragged_columns_rejected():
    with pytest.raises(ValueError):
        ColumnTable("bad", {"a": [1, 2], "b": [1]})


def test_to_relation_and_back():
    relation = NATION.to_relation()
    assert relation.attributes == ("n_nationkey", "n_name", "n_regionkey")
    assert len(relation.rows) == 3
    assert ColumnTable.from_relation("nation", relation).to_relation() == relation
    # The conversion is cached.
    assert NATION.to_relation() is relation


def test_view_qualifies_columns_without_copying():
    view = NATION.view(("ns.n_nationkey", "ns.n_name"))
    assert view.attributes == ("ns.n_nationkey", "ns.n_name")
    assert view.column("ns.n_name") is NATION.column("n_name")


def test_view_unknown_attribute():
    with pytest.raises(KeyError):
        NATION.view(("ns.n_missing",))


def test_as_batch_feeds_both_executors():
    view = NATION.view(("ns.n_nationkey", "ns.n_name", "ns.n_regionkey"))
    plan = ScanNode("ns", view.attributes)
    database = {"ns": view}
    columnar = run_plan(plan, database, executor="columnar")
    interpreter = run_plan(plan, database, executor="interpreter")
    assert columnar == interpreter
    assert len(columnar.rows) == 3


def test_measured_stats():
    stats = NATION.stats(keys=(frozenset({"n_nationkey"}),))
    assert stats.cardinality == 3.0
    assert stats.distinct["n_regionkey"] == 2.0  # 0 and NULL
    assert stats.keys == (frozenset({"n_nationkey"}),)
    assert NATION.null_fraction("n_regionkey") == pytest.approx(1 / 3)


def test_dataset_register_stats():
    catalog = Catalog()
    Dataset({"nation": NATION}).register_stats(catalog)
    assert catalog.lookup("NATION").cardinality == 3.0


class FakeRel:
    def __init__(self, name, attributes, source=None):
        self.name = name
        self.attributes = tuple(attributes)
        self.source_table = source or name


def test_resolve_by_source_then_name_then_columns():
    dataset = Dataset({"nation": NATION})
    assert dataset.resolve(FakeRel("ns", ["ns.n_name"], source="nation")) is NATION
    assert dataset.resolve(FakeRel("nation", ["nation.n_name"])) is NATION
    # Aliased relation with no source: matched by bare column set.
    aliased = FakeRel("x", ["x.n_nationkey", "x.n_name", "x.n_regionkey"])
    assert dataset.resolve(aliased) is NATION
    with pytest.raises(KeyError):
        dataset.resolve(FakeRel("y", ["y.other"]))


def test_database_for_tpch_query():
    from repro.tpch.datagen import scaled_dataset
    from repro.tpch.queries import TPCH_QUERIES

    dataset = scaled_dataset(0.01)
    query = TPCH_QUERIES["Ex"](0.01)
    database = dataset.database_for(query)
    assert set(database) == {rel.name for rel in query.relations}
    for rel in query.relations:
        assert database[rel.name].attributes == tuple(rel.attributes)
