"""Differential gate: the columnar executor is row-set identical to the
interpreter on random SQL workloads and every TPC-H query, under both
array backends and for every optimizer strategy's plan shape."""

import random

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

# The backend fixture only toggles an env var read per run_plan call, so
# not resetting it between generated inputs is safe.
FIXTURE_OK = dict(
    deadline=None, suppress_health_check=[HealthCheck.function_scoped_fixture]
)

from repro.exec import run_plan
from repro.optimizer import optimize
from repro.query.canonical import canonical_plan
from repro.tpch.datagen import scaled_dataset
from repro.tpch.queries import TPCH_QUERIES, micro_database
from repro.workload import WorkloadConfig, generate_database, generate_query

STRATEGIES = ["ea-prune", "dphyp", "h1"]


@settings(max_examples=20, **FIXTURE_OK)
@given(seed=st.integers(min_value=0, max_value=100_000))
def test_random_workloads_row_set_identical(backend, seed):
    rng = random.Random(seed)
    query = generate_query(rng.randint(2, 5), rng)
    database = generate_database(query, rng)
    plans = [canonical_plan(query)] + [
        optimize(query, s).plan.node for s in STRATEGIES[:2]
    ]
    for plan in plans:
        interpreter = run_plan(plan, database, executor="interpreter")
        columnar = run_plan(plan, database, executor="columnar")
        assert columnar == interpreter, f"diverged on seed {seed}"


@settings(max_examples=10, **FIXTURE_OK)
@given(seed=st.integers(min_value=0, max_value=100_000))
def test_outer_join_heavy_workloads(backend, seed):
    from repro.rewrites.pushdown import OpKind

    rng = random.Random(seed)
    config = WorkloadConfig(
        operator_weights={
            OpKind.INNER: 0.2,
            OpKind.LEFT_OUTER: 0.3,
            OpKind.FULL_OUTER: 0.3,
            OpKind.LEFT_SEMI: 0.1,
            OpKind.LEFT_ANTI: 0.1,
        }
    )
    query = generate_query(rng.randint(2, 5), rng, config)
    database = generate_database(query, rng)
    plan = canonical_plan(query)
    assert run_plan(plan, database, executor="columnar") == run_plan(
        plan, database, executor="interpreter"
    )


@pytest.mark.parametrize("name", sorted(TPCH_QUERIES))
def test_tpch_micro_all_strategies(backend, name):
    query = TPCH_QUERIES[name](1.0)
    database = micro_database(query)
    expected = run_plan(canonical_plan(query), database, executor="interpreter")
    for strategy in STRATEGIES:
        plan = optimize(query, strategy).plan.node
        assert run_plan(plan, database, executor="columnar") == expected, (
            f"{name} diverged under {strategy}"
        )


def test_tpch_scaled_numpy_matches_fallback(monkeypatch):
    """Cross-backend check at a scale the interpreter cannot reach."""
    from repro.exec.arrays import FORCE_FALLBACK_ENV, HAVE_NUMPY

    if not HAVE_NUMPY:
        pytest.skip("numpy not installed")
    dataset = scaled_dataset(0.01)
    query = TPCH_QUERIES["Q3"](0.01)
    database = dataset.database_for(query)
    plan = optimize(query, "ea-prune").plan.node
    monkeypatch.delenv(FORCE_FALLBACK_ENV, raising=False)
    accelerated = run_plan(plan, database, executor="columnar")
    monkeypatch.setenv(FORCE_FALLBACK_ENV, "1")
    fallback = run_plan(plan, database, executor="columnar")
    assert accelerated == fallback
    assert len(accelerated.rows) > 0
