"""Lowering units: conjunct flattening, equi-key extraction, plan shapes."""

import pytest

from repro.algebra.expressions import Attr, BinOp, Const, Logical, conjunction
from repro.exec.physical import (
    PhysFilter,
    PhysGroupAgg,
    PhysHashJoin,
    PhysMap,
    PhysNLJoin,
    PhysProject,
    PhysScan,
    flatten_conjuncts,
    lower,
    render_physical,
    split_equi_keys,
)
from repro.plans.nodes import JoinNode, ProjectNode, ScanNode, SelectNode
from repro.rewrites.pushdown import OpKind


def eq(a, b):
    return BinOp("=", Attr(a), Attr(b))


def test_flatten_conjuncts_unnests_ands():
    pred = Logical("and", (eq("a", "b"), Logical("and", (eq("c", "d"), eq("e", "f")))))
    assert len(flatten_conjuncts(pred)) == 3


def test_flatten_conjuncts_keeps_or_opaque():
    pred = Logical("or", (eq("a", "b"), eq("c", "d")))
    assert flatten_conjuncts(pred) == [pred]


def test_split_equi_keys_both_orientations():
    # a=x written left-of-right, y=b written right-of-left: both qualify.
    pred = conjunction([eq("l.a", "r.x"), eq("r.y", "l.b")])
    lk, rk, residual = split_equi_keys(pred, ("l.a", "l.b"), ("r.x", "r.y"))
    assert lk == ("l.a", "l.b")
    assert rk == ("r.x", "r.y")
    assert residual is None


def test_split_equi_keys_collects_residual():
    ineq = BinOp("<", Attr("l.a"), Attr("r.x"))
    const_eq = BinOp("=", Attr("l.a"), Const(3))
    pred = conjunction([eq("l.a", "r.x"), ineq, const_eq])
    lk, rk, residual = split_equi_keys(pred, ("l.a",), ("r.x",))
    assert lk == ("l.a",)
    assert rk == ("r.x",)
    # Both non-equi conjuncts survive, re-ANDed.
    assert set(flatten_conjuncts(residual)) == {ineq, const_eq}


def test_split_equi_keys_same_side_equality_is_residual():
    pred = eq("l.a", "l.b")  # both attrs on the left input
    lk, rk, residual = split_equi_keys(pred, ("l.a", "l.b"), ("r.x",))
    assert lk == ()
    assert residual == pred


def scan(name, attrs):
    return ScanNode(name, tuple(attrs))


def test_lower_equi_join_becomes_hash_join():
    plan = JoinNode(OpKind.INNER, eq("l.a", "r.x"), scan("L", ["l.a"]), scan("R", ["r.x"]))
    phys = lower(plan)
    assert isinstance(phys, PhysHashJoin)
    assert phys.left_keys == ("l.a",)
    assert phys.residual is None
    assert phys.attributes == plan.attributes


def test_lower_theta_join_becomes_nested_loop():
    pred = BinOp("<", Attr("l.a"), Attr("r.x"))
    plan = JoinNode(OpKind.INNER, pred, scan("L", ["l.a"]), scan("R", ["r.x"]))
    phys = lower(plan)
    assert isinstance(phys, PhysNLJoin)
    assert phys.predicate is pred


def test_lower_preserves_outer_join_defaults_and_kind():
    plan = JoinNode(
        OpKind.LEFT_OUTER,
        eq("l.a", "r.x"),
        scan("L", ["l.a"]),
        scan("R", ["r.x"]),
        right_defaults=(("r.x", 0),),
    )
    phys = lower(plan)
    assert isinstance(phys, PhysHashJoin)
    assert phys.op is OpKind.LEFT_OUTER
    assert phys.right_defaults == (("r.x", 0),)


def test_lower_select_project_shapes():
    pred = BinOp(">", Attr("l.a"), Const(1))
    plan = ProjectNode(("l.a",), SelectNode(pred, scan("L", ["l.a", "l.b"])))
    phys = lower(plan)
    assert isinstance(phys, PhysProject)
    assert isinstance(phys.child, PhysFilter)
    assert isinstance(phys.child.child, PhysScan)
    assert phys.attributes == ("l.a",)


def test_lower_rejects_unknown_node():
    with pytest.raises(TypeError):
        lower(object())


def test_render_physical_tree():
    plan = JoinNode(OpKind.INNER, eq("l.a", "r.x"), scan("L", ["l.a"]), scan("R", ["r.x"]))
    text = render_physical(lower(plan))
    assert "hash-join[l.a=r.x]" in text
    assert "scan(L)" in text
    assert "scan(R)" in text
