"""Per-operator columnar units, each checked against the interpreter.

Every test runs under both array backends (numpy lanes and the
pure-python fallback) via the ``backend`` fixture.
"""

import pytest

from repro.aggregates.calls import avg, count, count_star, max_, min_, sum_
from repro.aggregates.vector import AggItem, AggVector
from repro.algebra.expressions import Attr, BinOp, Case, Const, IsNull, Logical, Not
from repro.algebra.relation import Relation
from repro.algebra.values import NULL
from repro.exec import run_plan
from repro.exec.columnar import execute_physical
from repro.exec.physical import PhysScan, PhysSort, lower
from repro.plans.nodes import (
    GroupByNode,
    JoinNode,
    MapNode,
    ProjectNode,
    ScanNode,
    SelectNode,
)
from repro.rewrites.pushdown import OpKind


def both(plan, database, limit=None):
    """Columnar result, asserted equal to the interpreter's."""
    columnar = run_plan(plan, database, executor="columnar", limit=limit)
    interpreter = run_plan(plan, database, executor="interpreter", limit=limit)
    assert columnar == interpreter
    return columnar


L = Relation.from_tuples(
    ("l.k", "l.v"), [(1, 10), (2, 20), (2, 21), (3, NULL), (NULL, 40)]
)
R = Relation.from_tuples(
    ("r.k", "r.w"), [(2, 200), (2, 201), (3, 300), (4, 400), (NULL, 500)]
)
DB = {"L": L, "R": R}

SCAN_L = ScanNode("L", ("l.k", "l.v"))
SCAN_R = ScanNode("R", ("r.k", "r.w"))
KEY_EQ = BinOp("=", Attr("l.k"), Attr("r.k"))


def test_scan_roundtrip(backend):
    assert both(SCAN_L, DB) == L


def test_scan_rejects_schema_mismatch(backend):
    bad = ScanNode("L", ("l.k", "l.other"))
    with pytest.raises(ValueError):
        run_plan(bad, DB, executor="columnar")


def test_filter_comparison(backend):
    plan = SelectNode(BinOp(">", Attr("l.v"), Const(15)), SCAN_L)
    result = both(plan, DB)
    assert len(result.rows) == 3  # the NULL comparison is UNKNOWN, filtered out


def test_filter_keeps_batch_when_all_pass(backend):
    plan = SelectNode(BinOp(">=", Attr("r.w"), Const(0)), SCAN_R)
    assert both(plan, DB) == R


def test_project_and_map(backend):
    plan = ProjectNode(
        ("l.k", "double"),
        MapNode((("double", BinOp("*", Attr("l.v"), Const(2))),), SCAN_L),
    )
    result = both(plan, DB)
    assert {row["double"] for row in result.rows} == {20, 40, 42, NULL, 80}


@pytest.mark.parametrize(
    "kind",
    [OpKind.INNER, OpKind.LEFT_OUTER, OpKind.FULL_OUTER, OpKind.LEFT_SEMI, OpKind.LEFT_ANTI],
)
def test_hash_join_kinds(backend, kind):
    plan = JoinNode(kind, KEY_EQ, SCAN_L, SCAN_R)
    both(plan, DB)


def test_hash_join_with_residual(backend):
    pred = Logical("and", (KEY_EQ, BinOp(">", Attr("r.w"), Const(200))))
    plan = JoinNode(OpKind.INNER, pred, SCAN_L, SCAN_R)
    result = both(plan, DB)
    assert all(row["r.w"] > 200 for row in result.rows)


def test_nested_loop_theta_join(backend):
    pred = BinOp("<", Attr("l.v"), Attr("r.w"))
    plan = JoinNode(OpKind.INNER, pred, SCAN_L, SCAN_R)
    both(plan, DB)


def test_groupjoin(backend):
    vector = AggVector([AggItem("cnt", count_star()), AggItem("total", sum_(Attr("r.w")))])
    plan = JoinNode(OpKind.GROUPJOIN, KEY_EQ, SCAN_L, SCAN_R, groupjoin_vector=vector)
    result = both(plan, DB)
    by_key = {row["l.v"]: row["cnt"] for row in result.rows}
    assert by_key[20] == 2 and by_key[10] == 0


def test_group_by_all_aggregates(backend):
    vector = AggVector(
        [
            AggItem("n", count_star()),
            AggItem("nv", count(Attr("l.v"))),
            AggItem("s", sum_(Attr("l.v"))),
            AggItem("lo", min_(Attr("l.v"))),
            AggItem("hi", max_(Attr("l.v"))),
            AggItem("mean", avg(Attr("l.v"))),
        ]
    )
    plan = GroupByNode(("l.k",), vector, SCAN_L)
    result = both(plan, DB)
    rows = {row["l.k"]: row for row in result.rows}
    assert rows[3]["s"] is NULL and rows[3]["n"] == 1 and rows[3]["nv"] == 0
    assert rows[2]["mean"] == 20.5


def test_group_by_distinct(backend):
    dup = Relation.from_tuples(("t.g", "t.x"), [(1, 5), (1, 5), (1, 6), (2, 5)])
    vector = AggVector(
        [AggItem("d", count(Attr("t.x"), distinct=True)), AggItem("sd", sum_(Attr("t.x"), distinct=True))]
    )
    plan = GroupByNode(("t.g",), vector, ScanNode("T", ("t.g", "t.x")))
    result = both(plan, {"T": dup})
    rows = {row["t.g"]: row for row in result.rows}
    assert rows[1]["d"] == 2 and rows[1]["sd"] == 11


def test_group_by_post_expressions(backend):
    vector = AggVector([AggItem("s", sum_(Attr("l.v"))), AggItem("n", count_star())])
    post = (("l.k", Attr("l.k")), ("scaled", BinOp("*", Attr("s"), Const(10))))
    plan = GroupByNode(("l.k",), vector, SCAN_L, post=post)
    result = both(plan, DB)
    assert set(result.attributes) == {"l.k", "scaled"}


def test_expression_kitchen_sink_filter(backend):
    pred = Logical(
        "or",
        (
            Logical("and", (Not(IsNull(Attr("l.v"))), BinOp("<", Attr("l.v"), Const(21)))),
            BinOp(
                "=",
                Case(IsNull(Attr("l.k")), Const(1), Const(0)),
                Const(1),
            ),
        ),
    )
    plan = SelectNode(pred, SCAN_L)
    result = both(plan, DB)
    assert len(result.rows) == 3


def test_division_by_zero_is_null(backend):
    t = Relation.from_tuples(("t.a", "t.b"), [(10, 2), (10, 0), (NULL, 2)])
    plan = MapNode((("q", BinOp("/", Attr("t.a"), Attr("t.b"))),), ScanNode("T", ("t.a", "t.b")))
    result = both(plan, {"T": t})
    assert [row["q"] for row in result.rows] == [5.0, NULL, NULL]


def test_limit_truncates_identically(backend):
    plan = JoinNode(OpKind.INNER, KEY_EQ, SCAN_L, SCAN_R)
    full = both(plan, DB)
    capped = both(plan, DB, limit=2)
    assert len(capped.rows) == 2
    assert capped.rows == full.rows[:2]
    assert both(plan, DB, limit=0).rows == []


def test_limit_rejects_negative(backend):
    with pytest.raises(ValueError):
        run_plan(SCAN_L, DB, limit=-1)


def test_unknown_executor_rejected():
    with pytest.raises(ValueError):
        run_plan(SCAN_L, DB, executor="gpu")


def test_sort_stable_multikey_nulls_last(backend):
    t = Relation.from_tuples(
        ("t.a", "t.b"),
        [(2, "x"), (NULL, "y"), (1, "z"), (2, "a"), (1, NULL)],
    )
    phys = PhysSort((("t.a", False), ("t.b", True)), PhysScan("T", ("t.a", "t.b")))
    result = execute_physical(phys, {"T": t}).to_relation()
    got = [(row["t.a"], row["t.b"]) for row in result.rows]
    # ascending on t.a with NULL last; within a=1/2, t.b descending with
    # NULL first (it orders as the largest value).
    assert got == [(1, NULL), (1, "z"), (2, "x"), (2, "a"), (NULL, "y")]
