import pytest

from repro.exec.arrays import FORCE_FALLBACK_ENV, HAVE_NUMPY


@pytest.fixture(params=["numpy", "fallback"])
def backend(request, monkeypatch):
    """Run the test under both columnar array backends."""
    if request.param == "fallback":
        monkeypatch.setenv(FORCE_FALLBACK_ENV, "1")
    else:
        if not HAVE_NUMPY:
            pytest.skip("numpy not installed")
        monkeypatch.delenv(FORCE_FALLBACK_ENV, raising=False)
    return request.param
