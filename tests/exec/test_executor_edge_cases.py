"""Satellite: executor-equivalence edge cases.

NULL join keys under semi/anti/outer joins, predicates evaluating to
UNKNOWN, empty inputs, and duplicate-heavy group-bys — each asserted
both against the interpreter (row-set equality) and against the SQL
semantics directly, under both array backends.
"""

import pytest

from repro.aggregates.calls import avg, count, count_star, sum_
from repro.aggregates.vector import AggItem, AggVector
from repro.algebra.expressions import Attr, BinOp, Const, IsNull, Logical, Not
from repro.algebra.relation import Relation
from repro.algebra.values import NULL
from repro.exec import run_plan
from repro.plans.nodes import GroupByNode, JoinNode, ScanNode, SelectNode
from repro.rewrites.pushdown import OpKind

SCAN_L = ScanNode("L", ("l.k",))
SCAN_R = ScanNode("R", ("r.k",))
KEY_EQ = BinOp("=", Attr("l.k"), Attr("r.k"))

ALL_JOIN_KINDS = [
    OpKind.INNER,
    OpKind.LEFT_OUTER,
    OpKind.FULL_OUTER,
    OpKind.LEFT_SEMI,
    OpKind.LEFT_ANTI,
]


def both(plan, database):
    columnar = run_plan(plan, database, executor="columnar")
    interpreter = run_plan(plan, database, executor="interpreter")
    assert columnar == interpreter
    return columnar


# ---------------------------------------------------------------------------
# NULL join keys
# ---------------------------------------------------------------------------

NULL_L = Relation.from_tuples(("l.k",), [(1,), (NULL,), (2,), (NULL,)])
NULL_R = Relation.from_tuples(("r.k",), [(NULL,), (1,), (3,)])
NULL_DB = {"L": NULL_L, "R": NULL_R}


def test_null_keys_never_match_inner(backend):
    result = both(JoinNode(OpKind.INNER, KEY_EQ, SCAN_L, SCAN_R), NULL_DB)
    # Only 1=1 matches; NULL=NULL is UNKNOWN, not TRUE.
    assert [(r["l.k"], r["r.k"]) for r in result.rows] == [(1, 1)]


def test_null_keys_semi_join(backend):
    result = both(JoinNode(OpKind.LEFT_SEMI, KEY_EQ, SCAN_L, SCAN_R), NULL_DB)
    assert [r["l.k"] for r in result.rows] == [1]


def test_null_keys_anti_join_keeps_null_rows(backend):
    # NOT EXISTS semantics: a NULL-keyed left row has no match, so it stays.
    result = both(JoinNode(OpKind.LEFT_ANTI, KEY_EQ, SCAN_L, SCAN_R), NULL_DB)
    assert [r["l.k"] for r in result.rows] == [NULL, 2, NULL]


def test_null_keys_left_outer_pads_null_rows(backend):
    result = both(JoinNode(OpKind.LEFT_OUTER, KEY_EQ, SCAN_L, SCAN_R), NULL_DB)
    assert [(r["l.k"], r["r.k"]) for r in result.rows] == [
        (1, 1),
        (NULL, NULL),
        (2, NULL),
        (NULL, NULL),
    ]


def test_null_keys_full_outer_emits_both_sides(backend):
    result = both(JoinNode(OpKind.FULL_OUTER, KEY_EQ, SCAN_L, SCAN_R), NULL_DB)
    # 4 left rows (one matched) + 2 unmatched right rows appended at the end.
    assert len(result.rows) == 6
    assert [(r["l.k"], r["r.k"]) for r in result.rows[-2:]] == [(NULL, NULL), (NULL, 3)]


def test_null_in_multi_key_conjunction(backend):
    left = Relation.from_tuples(("l.a", "l.b"), [(1, 1), (1, NULL), (NULL, 2)])
    right = Relation.from_tuples(("r.a", "r.b"), [(1, 1), (1, 2), (NULL, 2)])
    pred = Logical(
        "and",
        (BinOp("=", Attr("l.a"), Attr("r.a")), BinOp("=", Attr("l.b"), Attr("r.b"))),
    )
    plan = JoinNode(
        OpKind.INNER,
        pred,
        ScanNode("L", ("l.a", "l.b")),
        ScanNode("R", ("r.a", "r.b")),
    )
    result = both(plan, {"L": left, "R": right})
    assert [(r["l.a"], r["l.b"]) for r in result.rows] == [(1, 1)]


# ---------------------------------------------------------------------------
# UNKNOWN three-valued logic
# ---------------------------------------------------------------------------

def test_unknown_is_not_false_for_not(backend):
    # NOT (NULL > 0) is UNKNOWN, not TRUE: the row must NOT pass.
    t = Relation.from_tuples(("t.x",), [(NULL,), (-1,), (5,)])
    plan = SelectNode(Not(BinOp(">", Attr("t.x"), Const(0))), ScanNode("T", ("t.x",)))
    result = both(plan, {"T": t})
    assert [r["t.x"] for r in result.rows] == [-1]


def test_kleene_or_rescues_unknown(backend):
    # UNKNOWN OR TRUE = TRUE: rows with NULL x but matching y still pass.
    t = Relation.from_tuples(("t.x", "t.y"), [(NULL, 1), (NULL, 0), (3, 0)])
    pred = Logical("or", (BinOp(">", Attr("t.x"), Const(0)), BinOp("=", Attr("t.y"), Const(1))))
    plan = SelectNode(pred, ScanNode("T", ("t.x", "t.y")))
    result = both(plan, {"T": t})
    assert [(r["t.x"], r["t.y"]) for r in result.rows] == [(NULL, 1), (3, 0)]


def test_kleene_and_unknown_poisons_true(backend):
    t = Relation.from_tuples(("t.x", "t.y"), [(NULL, 1), (2, 1)])
    pred = Logical("and", (BinOp(">", Attr("t.x"), Const(0)), BinOp("=", Attr("t.y"), Const(1))))
    plan = SelectNode(pred, ScanNode("T", ("t.x", "t.y")))
    result = both(plan, {"T": t})
    assert [r["t.x"] for r in result.rows] == [2]


def test_is_null_is_two_valued(backend):
    t = Relation.from_tuples(("t.x",), [(NULL,), (0,), (1,)])
    plan = SelectNode(IsNull(Attr("t.x")), ScanNode("T", ("t.x",)))
    assert len(both(plan, {"T": t}).rows) == 1
    plan = SelectNode(Not(IsNull(Attr("t.x"))), ScanNode("T", ("t.x",)))
    assert len(both(plan, {"T": t}).rows) == 2


def test_unknown_residual_on_hash_join(backend):
    # Hash keys match but the residual is UNKNOWN: the pair must drop.
    left = Relation.from_tuples(("l.k", "l.v"), [(1, NULL), (1, 5)])
    right = Relation.from_tuples(("r.k",), [(1,)])
    pred = Logical("and", (KEY_EQ, BinOp(">", Attr("l.v"), Const(0))))
    plan = JoinNode(OpKind.INNER, pred, ScanNode("L", ("l.k", "l.v")), SCAN_R)
    result = both(plan, {"L": left, "R": right})
    assert [r["l.v"] for r in result.rows] == [5]


# ---------------------------------------------------------------------------
# empty inputs
# ---------------------------------------------------------------------------

EMPTY_L = Relation(("l.k",))
EMPTY_R = Relation(("r.k",))
SOME_L = Relation.from_tuples(("l.k",), [(1,), (2,)])
SOME_R = Relation.from_tuples(("r.k",), [(2,), (3,)])


@pytest.mark.parametrize("kind", ALL_JOIN_KINDS)
def test_empty_left_input(backend, kind):
    plan = JoinNode(kind, KEY_EQ, SCAN_L, SCAN_R)
    result = both(plan, {"L": EMPTY_L, "R": SOME_R})
    if kind is OpKind.FULL_OUTER:
        assert len(result.rows) == 2  # every right row padded
    else:
        assert result.rows == []


@pytest.mark.parametrize("kind", ALL_JOIN_KINDS)
def test_empty_right_input(backend, kind):
    plan = JoinNode(kind, KEY_EQ, SCAN_L, SCAN_R)
    result = both(plan, {"L": SOME_L, "R": EMPTY_R})
    if kind in (OpKind.LEFT_OUTER, OpKind.FULL_OUTER, OpKind.LEFT_ANTI):
        assert len(result.rows) == 2
    else:
        assert result.rows == []


@pytest.mark.parametrize("kind", ALL_JOIN_KINDS)
def test_both_inputs_empty(backend, kind):
    plan = JoinNode(kind, KEY_EQ, SCAN_L, SCAN_R)
    assert both(plan, {"L": EMPTY_L, "R": EMPTY_R}).rows == []


def test_empty_groupjoin_left_side(backend):
    vector = AggVector([AggItem("cnt", count_star())])
    plan = JoinNode(OpKind.GROUPJOIN, KEY_EQ, SCAN_L, SCAN_R, groupjoin_vector=vector)
    assert both(plan, {"L": EMPTY_L, "R": SOME_R}).rows == []


def test_group_by_empty_input(backend):
    vector = AggVector([AggItem("s", sum_(Attr("l.k")))])
    plan = GroupByNode(("l.k",), vector, SCAN_L)
    assert both(plan, {"L": EMPTY_L}).rows == []


def test_filter_on_empty_input(backend):
    plan = SelectNode(BinOp(">", Attr("l.k"), Const(0)), SCAN_L)
    assert both(plan, {"L": EMPTY_L}).rows == []


# ---------------------------------------------------------------------------
# duplicate-heavy group-by
# ---------------------------------------------------------------------------

def test_duplicate_heavy_group_by(backend):
    # 200 rows over 3 group keys, duplicated values, NULL keys and values.
    tuples = []
    for i in range(200):
        key = (i * 7) % 3 if i % 11 else NULL
        value = (i % 5) or NULL
        tuples.append((key, value))
    t = Relation.from_tuples(("t.g", "t.x"), tuples)
    vector = AggVector(
        [
            AggItem("n", count_star()),
            AggItem("nx", count(Attr("t.x"))),
            AggItem("dx", count(Attr("t.x"), distinct=True)),
            AggItem("s", sum_(Attr("t.x"))),
            AggItem("sd", sum_(Attr("t.x"), distinct=True)),
            AggItem("m", avg(Attr("t.x"))),
        ]
    )
    plan = GroupByNode(("t.g",), vector, ScanNode("T", ("t.g", "t.x")))
    result = both(plan, {"T": t})
    assert sum(row["n"] for row in result.rows) == 200
    # NULL group keys collapse into one group.
    assert sum(1 for row in result.rows if row["t.g"] is NULL) == 1


def test_group_key_numeric_unification(backend):
    # 1 and 1.0 are the same group (group_key), in both backends.
    t = Relation.from_tuples(("t.g", "t.x"), [(1, 10), (1.0, 20), (2, 30)])
    vector = AggVector([AggItem("s", sum_(Attr("t.x")))])
    plan = GroupByNode(("t.g",), vector, ScanNode("T", ("t.g", "t.x")))
    result = both(plan, {"T": t})
    assert len(result.rows) == 2
    assert sorted(row["s"] for row in result.rows) == [30, 30]


def test_join_key_numeric_unification(backend):
    # A float 2.0 key hash-matches an int 2 key, as SQL equality demands.
    left = Relation.from_tuples(("l.k",), [(2.0,), (3,)])
    right = Relation.from_tuples(("r.k",), [(2,), (3.5,)])
    result = both(JoinNode(OpKind.INNER, KEY_EQ, SCAN_L, SCAN_R), {"L": left, "R": right})
    assert [(r["l.k"], r["r.k"]) for r in result.rows] == [(2.0, 2)]
