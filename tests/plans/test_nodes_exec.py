"""Tests for plan nodes, rendering and the interpreter."""

import pytest

from repro.aggregates import count_star, sum_
from repro.aggregates.vector import AggItem, AggVector
from repro.algebra.expressions import Attr, BinOp, Const
from repro.algebra.relation import Relation
from repro.exec import execute
from repro.plans import render_plan
from repro.plans.nodes import (
    GroupByNode,
    JoinNode,
    MapNode,
    ProjectNode,
    ScanNode,
    SelectNode,
    count_groupings,
    direct_grouping_children,
)
from repro.rewrites.pushdown import OpKind


@pytest.fixture
def database():
    return {
        "r": Relation.from_tuples(["r.k", "r.v"], [(1, 10), (2, 20), (2, 25)]),
        "s": Relation.from_tuples(["s.k", "s.w"], [(1, 7), (3, 9)]),
    }


def scan_r():
    return ScanNode("r", ("r.k", "r.v"))


def scan_s():
    return ScanNode("s", ("s.k", "s.w"))


class TestNodeSchemas:
    def test_scan(self):
        assert scan_r().attributes == ("r.k", "r.v")

    def test_join_schema(self):
        node = JoinNode(OpKind.INNER, Attr("r.k").eq(Attr("s.k")), scan_r(), scan_s())
        assert node.attributes == ("r.k", "r.v", "s.k", "s.w")

    def test_semijoin_schema(self):
        node = JoinNode(OpKind.LEFT_SEMI, Attr("r.k").eq(Attr("s.k")), scan_r(), scan_s())
        assert node.attributes == ("r.k", "r.v")

    def test_groupjoin_schema(self):
        vector = AggVector([AggItem("g", sum_("s.w"))])
        node = JoinNode(
            OpKind.GROUPJOIN, Attr("r.k").eq(Attr("s.k")), scan_r(), scan_s(),
            groupjoin_vector=vector,
        )
        assert node.attributes == ("r.k", "r.v", "g")

    def test_groupjoin_requires_vector(self):
        with pytest.raises(ValueError):
            JoinNode(OpKind.GROUPJOIN, Attr("r.k").eq(Attr("s.k")), scan_r(), scan_s())

    def test_groupby_schema(self):
        node = GroupByNode(("r.k",), AggVector([AggItem("n", count_star())]), scan_r())
        assert node.attributes == ("r.k", "n")

    def test_groupby_with_post_schema(self):
        node = GroupByNode(
            ("r.k",),
            AggVector([AggItem("s", sum_("r.v")), AggItem("c", count_star())]),
            scan_r(),
            post=(("m", BinOp("/", Attr("s"), Attr("c"))),),
        )
        assert node.attributes == ("r.k", "m")

    def test_map_and_project_schema(self):
        mapped = MapNode((("double", BinOp("*", Attr("r.v"), Const(2))),), scan_r())
        assert mapped.attributes == ("r.k", "r.v", "double")
        projected = ProjectNode(("double",), mapped)
        assert projected.attributes == ("double",)


class TestHelpers:
    def test_count_groupings(self):
        inner = GroupByNode(("r.k",), AggVector([AggItem("n", count_star())]), scan_r())
        join = JoinNode(OpKind.INNER, Attr("r.k").eq(Attr("s.k")), inner, scan_s())
        top = GroupByNode(("r.k",), AggVector([AggItem("m", count_star())]), join)
        assert count_groupings(top) == 2

    def test_direct_grouping_children(self):
        inner = GroupByNode(("r.k",), AggVector([AggItem("n", count_star())]), scan_r())
        join = JoinNode(OpKind.INNER, Attr("r.k").eq(Attr("s.k")), inner, scan_s())
        assert direct_grouping_children(join) == 1
        assert direct_grouping_children(inner) == 0


class TestRender:
    def test_render_contains_labels(self):
        join = JoinNode(OpKind.LEFT_OUTER, Attr("r.k").eq(Attr("s.k")), scan_r(), scan_s())
        text = render_plan(join)
        assert "⟕" in text and "r" in text and "s" in text

    def test_render_with_annotations(self):
        text = render_plan(scan_r(), annotate=lambda n: "card=3")
        assert "card=3" in text

    def test_render_tree_structure(self):
        join = JoinNode(OpKind.INNER, Attr("r.k").eq(Attr("s.k")), scan_r(), scan_s())
        lines = render_plan(join).splitlines()
        assert len(lines) == 3
        assert lines[1].startswith("├─")
        assert lines[2].startswith("└─")


class TestExecution:
    def test_scan(self, database):
        assert execute(scan_r(), database) == database["r"]

    def test_scan_schema_mismatch(self, database):
        with pytest.raises(ValueError):
            execute(ScanNode("r", ("wrong",)), database)

    def test_select(self, database):
        node = SelectNode(BinOp(">", Attr("r.v"), Const(15)), scan_r())
        assert len(execute(node, database)) == 2

    def test_all_join_kinds_execute(self, database):
        pred = Attr("r.k").eq(Attr("s.k"))
        sizes = {}
        for op in (OpKind.INNER, OpKind.LEFT_OUTER, OpKind.FULL_OUTER,
                   OpKind.LEFT_SEMI, OpKind.LEFT_ANTI):
            node = JoinNode(op, pred, scan_r(), scan_s())
            sizes[op] = len(execute(node, database))
        assert sizes[OpKind.INNER] == 1
        assert sizes[OpKind.LEFT_OUTER] == 3
        assert sizes[OpKind.FULL_OUTER] == 4
        assert sizes[OpKind.LEFT_SEMI] == 1
        assert sizes[OpKind.LEFT_ANTI] == 2

    def test_outerjoin_defaults_applied(self, database):
        pred = Attr("r.k").eq(Attr("s.k"))
        node = JoinNode(
            OpKind.LEFT_OUTER, pred, scan_r(), scan_s(), right_defaults=(("s.w", 0),)
        )
        result = execute(node, database)
        padded = [row for row in result if row["r.k"] == 2]
        assert all(row["s.w"] == 0 for row in padded)

    def test_groupby_with_post(self, database):
        node = GroupByNode(
            ("r.k",),
            AggVector([AggItem("s", sum_("r.v")), AggItem("c", count_star())]),
            scan_r(),
            post=(("m", BinOp("/", Attr("s"), Attr("c"))),),
        )
        result = execute(node, database)
        by_k = {row["r.k"]: row["m"] for row in result}
        assert by_k[1] == 10 and by_k[2] == 22.5

    def test_unknown_node_rejected(self, database):
        class Fake:
            pass

        with pytest.raises(TypeError):
            execute(Fake(), database)
