"""``POST /execute`` on the sync tier: end-to-end plan-and-run serving.

A module-scoped server loads the deterministic ``tpch-sf0.001`` dataset
once; the tests drive both executor backends through HTTP and check the
row payloads against each other (the differential suite proper lives in
``tests/exec/``; here we assert the serving plumbing — executor choice,
limits, error codes, and the ``executions`` stats block).
"""

import pytest

from repro.server import PlanServer, PlanService, RequestError, ServerClient, ServerConfig

SQL = (
    "SELECT ns.n_name, count(*) AS cnt FROM nation ns "
    "JOIN supplier s ON ns.n_nationkey = s.s_nationkey GROUP BY ns.n_name"
)
JOIN_SQL = (
    "SELECT r.r_name, count(*) AS cnt FROM region r "
    "JOIN nation n ON r.r_regionkey = n.n_regionkey GROUP BY r.r_name"
)
BAD_TABLE = "SELECT count(*) FROM nowhere GROUP BY x"


@pytest.fixture(scope="module")
def server():
    config = ServerConfig(
        port=0, workers=0, cache_capacity=64, max_inflight=4, dataset="tpch-sf0.001"
    )
    with PlanServer(config) as running:
        yield running


@pytest.fixture()
def client(server):
    with ServerClient(port=server.port) as c:
        yield c


class TestExecute:
    def test_round_trip_default_executor(self, client):
        body = client.execute(SQL)
        assert body["executor"] == "columnar"  # the serving default
        assert body["columns"] == ["ns.n_name", "cnt"]
        assert body["row_count"] == len(body["rows"]) > 0
        assert body["execution_seconds"] >= 0.0
        assert body["cost"] > 0

    def test_backends_agree_through_http(self, client):
        columnar = client.execute(SQL, limit=None)
        interpreter = client.execute(SQL, executor="interpreter", limit=None)
        assert interpreter["executor"] == "interpreter"
        assert sorted(map(tuple, columnar["rows"])) == sorted(
            map(tuple, interpreter["rows"])
        )

    def test_limit_truncates(self, client):
        body = client.execute(SQL, limit=2)
        assert body["limit"] == 2
        assert body["row_count"] == 2

    def test_limit_zero_returns_schema_only(self, client):
        body = client.execute(SQL, limit=0)
        assert body["rows"] == []
        assert body["columns"] == ["ns.n_name", "cnt"]

    def test_absent_limit_defaults_to_cap(self, client):
        body = client.execute(JOIN_SQL)
        assert body["limit"] == 1000

    def test_second_run_plans_from_cache(self, client):
        client.execute(JOIN_SQL, limit=None)
        body = client.execute(JOIN_SQL, limit=None)
        assert body["cache_hit"] is True

    def test_bad_executor_is_400(self, client):
        from repro.server import ServerError

        with pytest.raises(ServerError) as excinfo:
            client.execute(SQL, executor="gpu")
        assert excinfo.value.status == 400
        assert excinfo.value.code == "bad_executor"

    def test_bad_limit_is_400(self, client):
        from repro.server import ServerError

        with pytest.raises(ServerError) as excinfo:
            client.execute(SQL, limit=-1)
        assert excinfo.value.status == 400

    def test_parse_error_is_400(self, client):
        from repro.server import ServerError

        with pytest.raises(ServerError) as excinfo:
            client.execute(BAD_TABLE)
        assert excinfo.value.status == 400
        assert excinfo.value.code == "parse_error"

    def test_get_is_405(self, client):
        from repro.server import ServerError

        with pytest.raises(ServerError) as excinfo:
            client._request("GET", "/execute")
        assert excinfo.value.status == 405

    def test_stats_report_executions(self, client):
        client.execute(SQL)
        stats = client.stats()
        executions = stats["executions"]
        assert executions["count"] >= 1
        assert executions["by_executor"].get("columnar", 0) >= 1
        assert executions["rows_returned"] >= 1
        assert executions["p50_ms"] is not None
        # /execute requests are metered under their own endpoint too.
        assert stats["requests"]["POST /execute"]["count"] >= 1


class TestExecuteWithoutDataset:
    def test_409_when_no_dataset_loaded(self):
        service = PlanService(ServerConfig(port=0, workers=0))
        try:
            with pytest.raises(RequestError) as excinfo:
                service.execute_body({"sql": SQL})
            assert excinfo.value.status == 409
            assert excinfo.value.code == "no_dataset"
        finally:
            service.close()


class TestDatasetConfig:
    def test_bad_spec_rejected_at_construction(self):
        with pytest.raises(ValueError, match="dataset spec"):
            ServerConfig(dataset="nonsense-spec")

    def test_bad_executor_rejected_at_construction(self):
        with pytest.raises(ValueError, match="default_executor"):
            ServerConfig(default_executor="gpu")

    def test_out_of_range_scale_rejected(self):
        with pytest.raises(ValueError, match="scale"):
            ServerConfig(dataset="tpch-sf2")

    def test_interpreter_default_executor_is_honoured(self):
        service = PlanService(
            ServerConfig(
                port=0, workers=0, dataset="tpch-sf0.001",
                default_executor="interpreter",
            )
        )
        try:
            body = service.execute_body({"sql": SQL})
            assert body["executor"] == "interpreter"
        finally:
            service.close()
