"""Sync-tier deadline degradation over real HTTP.

A query that blows its ``request_timeout_seconds`` budget must come back
as HTTP 200 with ``degraded: true`` and an H1 plan when
``degradation="heuristic"`` (the default), or as a 504 when
``degradation="error"`` — and either way the worker must stop planning
within one deadline check interval, so the next request finds a free
worker instead of one still grinding the abandoned query.
"""

import time

import pytest

from repro.optimizer import OptimizerConfig, optimize
from repro.server import PlanServer, ServerClient, ServerConfig, ServerError
from repro.service import PlanCache
from repro.service.cache import STALE
from repro.service.fingerprint import cache_key, cardinality_snapshot
from repro.service.revalidate import StaleRevalidator
from repro.sql import parse_query
from repro.sql.catalog import Catalog, TableStats

# Six relations: enough ccps that the DP loop runs past its first
# deadline check under a zero-ish budget.
BIG_SQL = (
    "SELECT count(*) AS cnt "
    "FROM lineitem, orders, customer, supplier, nation, region "
    "WHERE lineitem.l_orderkey = orders.o_orderkey "
    "AND orders.o_custkey = customer.c_custkey "
    "AND lineitem.l_suppkey = supplier.s_suppkey "
    "AND supplier.s_nationkey = nation.n_nationkey "
    "AND nation.n_regionkey = region.r_regionkey"
)
SMALL_SQL = "SELECT count(*) AS cnt FROM region GROUP BY r_name"
# The alias marks the query for chaos slow-planning (1s per deadline
# check) once REPRO_CHAOS is armed; without chaos it is just an alias.
SLOW_SQL = (
    "SELECT count(*) AS cnt FROM nation chaos_slow_1000, supplier "
    "WHERE chaos_slow_1000.n_nationkey = supplier.s_nationkey"
)


class TestHeuristicDegradation:
    @pytest.fixture(scope="class")
    def server(self):
        config = ServerConfig(
            port=0, workers=0, request_timeout_seconds=0.001
        )
        with PlanServer(config) as running:
            yield running

    def test_blown_budget_returns_degraded_200(self, server):
        with ServerClient(port=server.port) as client:
            body = client.optimize(BIG_SQL)
            assert body["_status"] == 200
            assert body["degraded"] is True
            assert body["strategy"] == "h1"
            assert body["cost"] > 0

    def test_degraded_plans_never_cached(self, server):
        with ServerClient(port=server.port) as client:
            client.optimize(BIG_SQL)
            body = client.optimize(BIG_SQL)
            assert body["degraded"] is True
            assert body["cache_hit"] is False

    def test_stats_count_degraded_plans(self, server):
        with ServerClient(port=server.port) as client:
            client.optimize(BIG_SQL)
            stats = client.stats()
            assert stats["plans"]["degraded"] >= 1
            assert stats["degradation"] == "heuristic"

    def test_batch_flags_degraded_items(self, server):
        with ServerClient(port=server.port) as client:
            report = client.batch([BIG_SQL, SMALL_SQL])
            flags = [item.get("degraded") for item in report["items"]]
            assert flags[0] is True
            assert report["failed"] == 0

    def test_explain_carries_degraded_flag(self, server):
        with ServerClient(port=server.port) as client:
            body = client.explain(BIG_SQL)
            assert body["degraded"] is True


class TestErrorModeDegradation:
    def test_blown_budget_is_a_504(self):
        config = ServerConfig(
            port=0, workers=0, request_timeout_seconds=0.001,
            degradation="error",
        )
        with PlanServer(config) as server:
            with ServerClient(port=server.port) as client:
                with pytest.raises(ServerError) as exc_info:
                    client.optimize(BIG_SQL)
                assert exc_info.value.status == 504
                assert exc_info.value.code == "timeout"
                # A generous budget still plans normally.
                body = client.optimize(SMALL_SQL)
                assert body["degraded"] is False


class TestDegradedRevalidationGuard:
    def test_degraded_replan_never_overwrites_cached_plan(self):
        """Regression: the degraded-plan cache guard must extend to the
        background revalidation path.  A stale entry whose replan blows
        its deadline (H1 fallback, ``degraded: true``) must NOT have the
        degraded plan installed over the cached optimal one — the entry
        returns to stale and keeps serving the original plan."""
        catalog = Catalog.from_tpch()
        cache = PlanCache(capacity=8)
        sql = (
            "SELECT c.c_custkey, sum(l.l_extendedprice) AS revenue "
            "FROM customer c "
            "JOIN orders o ON c.c_custkey = o.o_custkey "
            "JOIN lineitem l ON o.o_orderkey = l.l_orderkey "
            "GROUP BY c.c_custkey"
        )
        # Plan and store under a healthy budget.
        healthy = OptimizerConfig()
        query = parse_query(sql, catalog)
        cached = optimize(query, config=healthy)
        entry_key = cache_key(
            query, healthy.strategy, healthy.factor,
            cost_model=healthy.cost_model_name,
        )
        cache.store(entry_key, query, cached, sql=sql,
                    exact_snapshot=cardinality_snapshot(query))

        # Drift far past the recost bound so revalidation must replan —
        # under a zero-ish deadline the replan degrades.
        old = catalog.lookup("lineitem")
        rows = old.cardinality * 16.0
        catalog.update_stats(
            "lineitem",
            TableStats(
                name=old.name, columns=old.columns, cardinality=rows,
                distinct={c: min(v * 16.0, rows) for c, v in old.distinct.items()},
                keys=old.keys,
            ),
        )
        cache.mark_stale("lineitem")
        strangled = OptimizerConfig(deadline_seconds=1e-9)
        counts = StaleRevalidator(cache, catalog, strangled).drain()

        assert counts["failed"] == 1
        assert counts["replanned"] == 0
        # Entry is back to stale (retryable), still serving the optimal plan.
        assert cache.entry_state(entry_key) == STALE
        served, state = cache.serve_entry(entry_key, query)
        assert state == STALE
        assert served.cost == cached.cost
        assert served.degraded is False


class TestWorkerReleasedAfterTimeout:
    def test_pool_worker_freed_within_one_check_interval(self, monkeypatch):
        """Regression: a 504 used to only cancel the *future*, leaving
        the pool worker grinding the abandoned query — the next request
        then queued behind a zombie computation.  With cooperative
        deadlines the worker itself stops at the next check point, so a
        follow-up query on a single-worker pool completes promptly."""
        monkeypatch.setenv("REPRO_CHAOS", "1")
        config = ServerConfig(
            port=0, workers=1, request_timeout_seconds=0.2,
            degradation="error",
        )
        with PlanServer(config) as server:
            with ServerClient(port=server.port, timeout=60.0) as client:
                client.optimize(SMALL_SQL)  # force the pool to spawn
                with pytest.raises(ServerError) as exc_info:
                    client.optimize(SLOW_SQL)
                assert exc_info.value.status == 504
                # The single pool worker must be free again: a clean
                # query completes far faster than the chaos grind would
                # allow if the worker were still stuck on SLOW_SQL.
                started = time.perf_counter()
                body = client.optimize(SMALL_SQL)
                elapsed = time.perf_counter() - started
                assert body["degraded"] is False
                assert elapsed < 5.0
