"""The ``python -m repro serve`` subcommand: flags, daemon, SIGTERM drain."""

import json
import os
import signal
import subprocess
import sys
import urllib.request
from pathlib import Path

import pytest

from repro.__main__ import build_serve_parser

SQL = (
    "SELECT ns.n_name, count(*) AS cnt FROM nation ns "
    "JOIN supplier s ON ns.n_nationkey = s.s_nationkey GROUP BY ns.n_name"
)
SRC = str(Path(__file__).resolve().parents[2] / "src")


class TestServeParser:
    def test_defaults(self):
        args = build_serve_parser().parse_args([])
        assert args.host == "127.0.0.1"
        assert args.port == 8080
        assert args.workers is None
        assert args.cache_size == 512
        assert args.strategy == "ea-prune"

    def test_flags(self):
        args = build_serve_parser().parse_args(
            ["--port", "0", "--workers", "0", "--strategy", "h2",
             "--factor", "1.1", "--max-inflight", "3", "--no-cache",
             "--grace", "2.5"]
        )
        assert args.port == 0
        assert args.workers == 0
        assert args.strategy == "h2"
        assert args.max_inflight == 3
        assert args.no_cache is True
        assert args.grace == 2.5

    def test_bad_strategy_rejected(self):
        with pytest.raises(SystemExit):
            build_serve_parser().parse_args(["--strategy", "magic"])


class TestServeDaemon:
    def test_serve_healthz_optimize_sigterm_drain(self):
        """The CI smoke, as a test: start, probe, optimize, drain cleanly."""
        env = dict(os.environ)
        existing = env.get("PYTHONPATH")
        env["PYTHONPATH"] = SRC + (os.pathsep + existing if existing else "")
        proc = subprocess.Popen(
            [sys.executable, "-m", "repro", "serve", "--port", "0", "--workers", "0"],
            stdout=subprocess.PIPE,
            stderr=subprocess.DEVNULL,
            env=env,
            text=True,
        )
        try:
            banner = proc.stdout.readline()
            assert "listening on http://" in banner
            url = banner.split("listening on ")[1].split()[0]

            with urllib.request.urlopen(url + "/healthz", timeout=30) as response:
                assert response.status == 200
                assert json.loads(response.read())["status"] == "ok"

            request = urllib.request.Request(
                url + "/optimize",
                data=json.dumps({"sql": SQL, "include_plan": False}).encode(),
                headers={"Content-Type": "application/json"},
            )
            with urllib.request.urlopen(request, timeout=60) as response:
                body = json.loads(response.read())
                assert body["cost"] > 0
                assert body["strategy"] == "ea-prune"

            proc.send_signal(signal.SIGTERM)
            out, _ = proc.communicate(timeout=60)
            assert proc.returncode == 0
            assert "drained cleanly" in out
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.communicate(timeout=30)
