"""`ServerClient` opt-in retry policy against a scripted stub server.

The stub speaks just enough HTTP to script status sequences
(503, 503, 200, ...) and count attempts, so the tests pin down exactly
which statuses retry, that ``Retry-After`` is honoured, and that the
default client (``retries=0``) behaves as before.
"""

import json
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

import pytest

from repro.server.client import ServerClient, ServerError


class _ScriptedHandler(BaseHTTPRequestHandler):
    protocol_version = "HTTP/1.1"

    def _respond(self):
        server = self.server
        with server.lock:
            server.attempts += 1
            status = server.script[min(server.attempts - 1, len(server.script) - 1)]
        if status == 200:
            body = json.dumps({"ok": True, "attempts": server.attempts}).encode()
        else:
            body = json.dumps(
                {"error": {"code": "scripted", "message": f"scripted {status}"}}
            ).encode()
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        if status in (429, 503):
            self.send_header("Retry-After", "0")
        self.end_headers()
        self.wfile.write(body)

    do_GET = _respond
    do_POST = _respond

    def log_message(self, format, *args):  # noqa: A002 - stdlib name
        pass


@pytest.fixture()
def stub():
    server = ThreadingHTTPServer(("127.0.0.1", 0), _ScriptedHandler)
    server.script = [200]
    server.attempts = 0
    server.lock = threading.Lock()
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    try:
        yield server
    finally:
        server.shutdown()
        server.server_close()


def _client(stub, **kwargs):
    return ServerClient(port=stub.server_address[1], timeout=10.0, **kwargs)


class TestRetryPolicy:
    def test_retries_503_until_success(self, stub):
        stub.script = [503, 503, 200]
        with _client(stub, retries=3) as client:
            body = client.stats()
        assert body["ok"] is True
        assert stub.attempts == 3

    def test_retries_429_until_success(self, stub):
        stub.script = [429, 200]
        with _client(stub, retries=3) as client:
            assert client.stats()["ok"] is True
        assert stub.attempts == 2

    def test_gives_up_after_budget(self, stub):
        stub.script = [503]
        with _client(stub, retries=2) as client:
            with pytest.raises(ServerError) as exc_info:
                client.stats()
        assert exc_info.value.status == 503
        assert stub.attempts == 3  # initial + 2 retries

    def test_default_client_never_retries_statuses(self, stub):
        stub.script = [503, 200]
        with _client(stub) as client:
            with pytest.raises(ServerError):
                client.stats()
        assert stub.attempts == 1

    def test_non_transient_statuses_never_retry(self, stub):
        stub.script = [500, 200]
        with _client(stub, retries=3) as client:
            with pytest.raises(ServerError) as exc_info:
                client.stats()
        assert exc_info.value.status == 500
        assert stub.attempts == 1

    def test_504_never_retries(self, stub):
        """A 504 means a planning budget was truly blown; retrying would
        blow it again and double the server's wasted work."""
        stub.script = [504, 200]
        with _client(stub, retries=3) as client:
            with pytest.raises(ServerError) as exc_info:
                client.stats()
        assert exc_info.value.status == 504
        assert stub.attempts == 1

    def test_server_error_carries_retry_after(self, stub):
        stub.script = [503]
        with _client(stub) as client:
            with pytest.raises(ServerError) as exc_info:
                client.stats()
        assert exc_info.value.retry_after == 0.0

    def test_retry_after_bounds_the_sleep(self, stub, monkeypatch):
        """The server hint (0s here) overrides exponential backoff, so
        the retry loop must not sleep a computed backoff instead."""
        sleeps = []
        monkeypatch.setattr(
            "repro.server.client.time.sleep", lambda s: sleeps.append(s)
        )
        stub.script = [503, 200]
        with _client(stub, retries=1, backoff_base=5.0, backoff_cap=60.0) as client:
            assert client.stats()["ok"] is True
        assert sleeps == []  # Retry-After: 0 → no sleep at all

    def test_connection_errors_retry(self, stub):
        """A connect refusal is transient from the policy's viewpoint:
        with no listener the client must raise only after its budget."""
        port = stub.server_address[1]
        stub.shutdown()
        stub.server_close()
        with ServerClient(port=port, timeout=0.5, retries=2,
                          backoff_base=0.01, backoff_cap=0.02) as client:
            with pytest.raises(OSError):
                client.stats()
