"""Sync-tier ``POST /stats_update``: drift lands, lifecycle turns over HTTP.

The control-plane endpoint statistics maintenance calls: it must apply
the drift to the catalog, mark affected cache entries stale (they keep
serving), and hand the backlog to the background revalidator — all
observable through ``/stats``.
"""

import time

import pytest

from repro.server import PlanServer, ServerClient, ServerConfig, ServerError

SQL = (
    "SELECT ns.n_name, count(*) AS cnt FROM nation ns "
    "JOIN supplier s ON ns.n_nationkey = s.s_nationkey GROUP BY ns.n_name"
)


def wait_for_revalidation(client, minimum=1, timeout=10.0):
    """Poll /stats until the background revalidator has processed
    *minimum* entries (it runs on its own thread)."""
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        plans = client.stats()["plans"]
        if plans["recosted"] + plans["replanned"] >= minimum:
            return plans
        time.sleep(0.05)
    raise AssertionError(f"revalidation did not reach {minimum} in {timeout}s")


class TestStatsUpdate:
    @pytest.fixture()
    def server(self):
        config = ServerConfig(
            port=0, workers=0, snapshot_band_width=1.0, recost_bound=2.0
        )
        with PlanServer(config) as running:
            yield running

    def test_drift_marks_recosts_and_reprices(self, server):
        with ServerClient(port=server.port) as client:
            before = client.optimize(SQL)
            assert client.optimize(SQL)["cache_hit"] is True

            body = client._request(
                "POST", "/stats_update",
                {"table": "supplier", "cardinality_factor": 4.0},
            )
            assert body["_status"] == 200
            assert body["relation"] == "supplier"
            assert body["cardinality_ratio"] == 4.0
            assert body["old_cardinality"] * 4.0 == body["new_cardinality"]

            plans = wait_for_revalidation(client)
            assert plans["recosted"] + plans["replanned"] >= 1
            after = client.optimize(SQL)
            assert after["cost"] > before["cost"]  # re-priced under 4x rows
            stats = client.stats()
            assert stats["cache"]["marked_stale"] >= 1
            assert stats["cache"]["stale_entries"] == 0  # backlog drained

    def test_absolute_cardinality_variant(self, server):
        with ServerClient(port=server.port) as client:
            body = client._request(
                "POST", "/stats_update",
                {"table": "supplier", "cardinality": 123456.0},
            )
            assert body["new_cardinality"] == 123456.0

    def test_unknown_table_is_404(self, server):
        with ServerClient(port=server.port) as client:
            with pytest.raises(ServerError) as excinfo:
                client._request(
                    "POST", "/stats_update",
                    {"table": "nowhere", "cardinality_factor": 2.0},
                )
            assert excinfo.value.status == 404

    @pytest.mark.parametrize(
        "body",
        [
            {"table": "supplier"},  # neither knob
            {"table": "supplier", "cardinality_factor": 2.0, "cardinality": 5.0},
            {"table": "supplier", "cardinality_factor": 0.0},
            {"table": "supplier", "cardinality": -1.0},
            {"table": 7, "cardinality_factor": 2.0},
        ],
    )
    def test_invalid_bodies_are_400(self, server, body):
        with ServerClient(port=server.port) as client:
            with pytest.raises(ServerError) as excinfo:
                client._request("POST", "/stats_update", body)
            assert excinfo.value.status == 400

    def test_stats_exposes_lifecycle_counters(self, server):
        with ServerClient(port=server.port) as client:
            plans = client.stats()["plans"]
            for counter in ("stale_served", "recosted", "replanned"):
                assert counter in plans
