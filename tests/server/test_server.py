"""Plan-server endpoint round-trips, backpressure, and graceful drain.

The servers under test bind an ephemeral port with ``workers=0`` —
optimization runs in the request thread, so no process pool spins up and
the suite stays fast; pool dispatch itself is covered by the service-level
tests and the benchmark.
"""

import json
import threading
import time
import urllib.error
import urllib.request

import pytest

from repro.server import (
    PlanServer,
    PlanService,
    RequestError,
    ServerClient,
    ServerConfig,
    ServerError,
)

SQL = (
    "SELECT ns.n_name, count(*) AS cnt FROM nation ns "
    "JOIN supplier s ON ns.n_nationkey = s.s_nationkey GROUP BY ns.n_name"
)
SQL_RENAMED = (
    "SELECT n2.n_name, count(*) AS cnt FROM nation n2 "
    "JOIN supplier sup ON n2.n_nationkey = sup.s_nationkey GROUP BY n2.n_name"
)
BAD_TABLE = "SELECT count(*) FROM nowhere GROUP BY x"


@pytest.fixture(scope="module")
def server():
    config = ServerConfig(port=0, workers=0, cache_capacity=64, max_inflight=4)
    with PlanServer(config) as running:
        yield running


@pytest.fixture()
def client(server):
    with ServerClient(port=server.port) as c:
        yield c


class TestHealthz:
    def test_ok_while_serving(self, client):
        body = client.healthz()
        assert body["status"] == "ok"
        assert body["workers"] == 0
        assert body["_status"] == 200


class TestOptimize:
    def test_round_trip_with_plan_tree(self, client):
        body = client.optimize(SQL)
        assert body["strategy"] == "ea-prune"
        assert body["cost"] > 0
        assert body["plan"]["op"] in ("groupby", "project", "map")
        assert body["ccp_count"] >= 1

    def test_cache_hit_on_repeat(self, client):
        client.optimize(SQL)
        body = client.optimize(SQL)
        assert body["cache_hit"] is True
        assert body["elapsed_seconds"] == 0.0

    def test_renamed_isomorphic_query_hits(self, client):
        client.optimize(SQL)
        body = client.optimize(SQL_RENAMED, include_plan=True)
        assert body["cache_hit"] is True
        # the served plan speaks the new query's names
        assert "n2" in json.dumps(body["plan"])

    def test_strategy_override(self, client):
        body = client.optimize(SQL, strategy="dphyp")
        assert body["strategy"] == "dphyp"

    def test_include_plan_false_omits_tree(self, client):
        body = client.optimize(SQL, include_plan=False)
        assert "plan" not in body

    def test_parse_error_is_400(self, client):
        with pytest.raises(ServerError) as excinfo:
            client.optimize(BAD_TABLE)
        assert excinfo.value.status == 400
        assert excinfo.value.code == "parse_error"
        assert "nowhere" in excinfo.value.message

    def test_bad_config_is_400(self, client):
        with pytest.raises(ServerError) as excinfo:
            client.optimize(SQL, strategy="nonsense")
        assert excinfo.value.status == 400
        assert excinfo.value.code == "bad_config"

    def test_missing_sql_is_400(self, client):
        with pytest.raises(ServerError) as excinfo:
            client._request("POST", "/optimize", {"not_sql": 1})
        assert excinfo.value.status == 400


class TestExplain:
    def test_rendered_tree(self, client):
        body = client.explain(SQL)
        assert body["cost"] > 0
        assert len(body["explain"].splitlines()) >= 2
        assert "scan" in body["explain"].lower() or "nation" in body["explain"]


class TestBatch:
    def test_poisoned_item_is_isolated(self, client):
        body = client.batch([SQL, BAD_TABLE, SQL_RENAMED])
        assert body["total"] == 3
        assert body["succeeded"] == 2
        assert body["failed"] == 1
        items = body["items"]
        assert "error" in items[1] and items[1]["stage"] == "parse"
        assert items[0]["cost"] == pytest.approx(items[2]["cost"])

    def test_duplicate_statements_dedup_through_cache(self, client):
        body = client.batch([SQL, SQL])
        assert body["succeeded"] == 2
        assert body["items"][1]["cache_hit"] is True

    def test_include_plans(self, client):
        body = client.batch([SQL], include_plans=True)
        assert body["items"][0]["plan"]["op"] in ("groupby", "project", "map")

    def test_empty_list_is_400(self, client):
        with pytest.raises(ServerError) as excinfo:
            client.batch([])
        assert excinfo.value.status == 400


class TestStats:
    def test_merges_request_and_cache_metrics(self, client):
        client.optimize(SQL)
        body = client.stats()
        assert body["requests"]["POST /optimize"]["count"] >= 1
        assert body["requests"]["POST /optimize"]["p50_ms"] is not None
        assert body["plans"]["served"] >= 1
        assert body["cache"]["capacity"] == 64.0
        assert body["workers"] == 0
        assert body["draining"] is False


class TestHttpEdges:
    def test_unknown_path_is_404(self, client):
        with pytest.raises(ServerError) as excinfo:
            client._request("GET", "/nope")
        assert excinfo.value.status == 404

    def test_wrong_method_is_405(self, client):
        with pytest.raises(ServerError) as excinfo:
            client._request("GET", "/optimize")
        assert excinfo.value.status == 405

    def test_invalid_json_body_is_400(self, server):
        request = urllib.request.Request(
            server.url + "/optimize",
            data=b"this is not json",
            headers={"Content-Type": "application/json"},
        )
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            urllib.request.urlopen(request, timeout=10)
        assert excinfo.value.code == 400
        assert json.loads(excinfo.value.read())["error"]["code"] == "bad_json"

    def test_non_object_body_is_400(self, server):
        request = urllib.request.Request(
            server.url + "/optimize",
            data=b"[1, 2]",
            headers={"Content-Type": "application/json"},
        )
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            urllib.request.urlopen(request, timeout=10)
        assert excinfo.value.code == 400


class TestBackpressure:
    def test_429_when_admission_full(self, server, client):
        """Fill every admission slot, then observe the 429 rejection."""
        service = server.service
        holders = [service.admit() for _ in range(server.config.effective_max_inflight)]
        for holder in holders:
            holder.__enter__()
        try:
            with pytest.raises(ServerError) as excinfo:
                client.optimize(SQL)
            assert excinfo.value.status == 429
            assert excinfo.value.code == "overloaded"
        finally:
            for holder in holders:
                holder.__exit__(None, None, None)
        # slots released: requests are admitted again
        assert client.optimize(SQL)["cost"] > 0

    def test_stats_counts_rejections(self, server, client):
        before = (
            client.stats()["requests"].get("POST /optimize", {}).get("rejected_429", 0)
        )
        service = server.service
        holders = [service.admit() for _ in range(server.config.effective_max_inflight)]
        for holder in holders:
            holder.__enter__()
        try:
            with pytest.raises(ServerError):
                client.optimize(SQL)
        finally:
            for holder in holders:
                holder.__exit__(None, None, None)
        after = client.stats()["requests"]["POST /optimize"]["rejected_429"]
        assert after == before + 1


class TestGracefulDrain:
    def test_drain_waits_for_inflight_then_rejects(self):
        """A drain must finish in-flight work, then refuse new requests."""
        config = ServerConfig(port=0, workers=0, cache_capacity=16)
        server = PlanServer(config).start()
        service = server.service
        release = threading.Event()
        finished = threading.Event()

        def slow_request():
            with service.admit():
                release.wait(timeout=10.0)
                finished.set()

        worker = threading.Thread(target=slow_request)
        worker.start()
        deadline = time.monotonic() + 5.0
        while service.inflight == 0 and time.monotonic() < deadline:
            time.sleep(0.005)
        assert service.inflight == 1

        drained = []
        drainer = threading.Thread(target=lambda: drained.append(server.drain(grace=10.0)))
        drainer.start()
        # draining: new work refused while the old request still runs
        deadline = time.monotonic() + 5.0
        while not service.draining and time.monotonic() < deadline:
            time.sleep(0.005)
        assert service.draining
        with pytest.raises(RequestError) as excinfo:
            with service.admit():
                pass
        assert excinfo.value.status == 503
        assert not finished.is_set()

        release.set()
        worker.join(timeout=10.0)
        drainer.join(timeout=10.0)
        assert drained == [True]  # in-flight request completed inside grace

    def test_drain_times_out_when_work_is_stuck(self):
        config = ServerConfig(port=0, workers=0)
        server = PlanServer(config).start()
        service = server.service
        release = threading.Event()

        def stuck_request():
            with service.admit():
                release.wait(timeout=10.0)

        worker = threading.Thread(target=stuck_request)
        worker.start()
        deadline = time.monotonic() + 5.0
        while service.inflight == 0 and time.monotonic() < deadline:
            time.sleep(0.005)
        try:
            assert server.drain(grace=0.1) is False
        finally:
            release.set()
            worker.join(timeout=10.0)

    def test_healthz_reports_draining(self):
        config = ServerConfig(port=0, workers=0)
        with PlanServer(config) as server:
            server.service.begin_drain()
            with ServerClient(port=server.port) as client:
                body = client.healthz()
                assert body["_status"] == 503
                assert body["status"] == "draining"


class TestServiceWithPool:
    """One service-level round trip through a real process pool."""

    def test_pool_dispatch_and_worker_error_mapping(self):
        config = ServerConfig(port=0, workers=2, cache_capacity=16)
        service = PlanService(config)
        try:
            body = service.optimize_body({"sql": SQL})
            assert body["cost"] > 0
            assert body["cache_hit"] is False
            again = service.optimize_body({"sql": SQL})
            assert again["cache_hit"] is True
        finally:
            service.close()


class TestServerConfigValidation:
    def test_bad_port(self):
        with pytest.raises(ValueError, match="port"):
            ServerConfig(port=70000)

    def test_negative_workers(self):
        with pytest.raises(ValueError, match="workers"):
            ServerConfig(workers=-1)

    def test_bad_strategy_rejected_eagerly(self):
        with pytest.raises(ValueError, match="unknown strategy"):
            ServerConfig(strategy="nonsense")

    def test_effective_defaults(self):
        config = ServerConfig(workers=3)
        assert config.effective_workers == 3
        assert config.effective_max_inflight == 14


class TestMixedOperators:
    """The PR-5 operator surface over the serving path (acceptance
    criterion: EXISTS round-trips with a cache key distinct from the
    NOT EXISTS variant)."""

    EXISTS_SQL = (
        "SELECT n.n_name, count(*) AS cnt FROM nation n WHERE EXISTS "
        "(SELECT * FROM supplier s WHERE s.s_nationkey = n.n_nationkey) "
        "GROUP BY n.n_name"
    )
    NOT_EXISTS_SQL = EXISTS_SQL.replace("WHERE EXISTS", "WHERE NOT EXISTS")

    def test_exists_round_trip_serves_a_semijoin_plan(self, client):
        body = client.optimize(self.EXISTS_SQL, include_plan=True)
        assert body["cost"] > 0
        assert "left_semi" in json.dumps(body["plan"])

    def test_not_exists_never_hits_the_exists_entry(self, client):
        client.optimize(self.EXISTS_SQL)
        anti = client.optimize(self.NOT_EXISTS_SQL, include_plan=True)
        assert anti["cache_hit"] is False
        assert "left_anti" in json.dumps(anti["plan"])
        again = client.optimize(self.EXISTS_SQL)
        assert again["cache_hit"] is True

    def test_right_join_and_in_subquery_round_trip(self, client):
        right = client.optimize(
            "SELECT n.n_name, count(*) AS cnt FROM supplier s "
            "RIGHT JOIN nation n ON s.s_nationkey = n.n_nationkey "
            "GROUP BY n.n_name"
        )
        assert right["cost"] > 0
        in_sub = client.optimize(
            "SELECT c.c_nationkey, count(*) AS cnt FROM customer c WHERE "
            "c.c_custkey IN (SELECT o.o_custkey FROM orders o) "
            "GROUP BY c.c_nationkey"
        )
        assert in_sub["cost"] > 0

    def test_reserved_keyword_is_a_client_error(self, client):
        with pytest.raises(ServerError) as info:
            client.optimize("SELECT count(*) FROM nation n ORDER BY n.n_name")
        assert info.value.status == 400
        assert "reserved but not yet supported" in str(info.value)
