"""Sync-tier reporting parity and drain exchange accounting.

The async tier aggregates per-shard stats; the sync tier must expose the
same reporting surface (``mode`` / ``shards`` / ``persistence`` /
``engine``) so a scraper needs no branching.  And a graceful drain must
cover the *whole* exchange — the admission slot is released when the
handler has its payload, but the response bytes and metrics record land
after that, so waiting on admissions alone can close the socket under
the final response or lose its metrics record.
"""

import threading
import time

import pytest

from repro.server import PlanServer, ServerConfig
from repro.server.client import ServerClient
from repro.server.service import PlanService

SQL = (
    "SELECT nation.n_name, count(*) AS cnt FROM nation, supplier "
    "WHERE nation.n_nationkey = supplier.s_nationkey GROUP BY nation.n_name"
)


class TestStatsParityFields:
    @pytest.fixture(scope="class")
    def server(self):
        with PlanServer(ServerConfig(port=0, workers=0, cache_capacity=16)) as running:
            yield running

    def test_stats_reports_async_parity_surface(self, server):
        with ServerClient(port=server.port) as client:
            client.optimize(SQL)
            stats = client.stats()
        assert stats["mode"] == "sync"
        assert stats["shards"] == 1
        assert stats["persistence"] == {"loaded": 0, "saved": 0, "rejected": 0}
        assert stats["engine"]["requested"] == "indexed"
        assert stats["engine"]["effective"] == stats["plans"]["by_engine"]
        assert stats["plans"]["by_engine"].get("indexed", 0) >= 1


class TestDrainExchangeAccounting:
    def make_service(self) -> PlanService:
        return PlanService(ServerConfig(port=0, workers=0, cache_capacity=4))

    def test_wait_idle_waits_for_exchanges_not_just_admissions(self):
        service = self.make_service()
        entered = threading.Event()
        release = threading.Event()

        def exchange():
            with service.track_exchange():
                # Simulates the post-admit tail of _handle: the admission
                # slot is long gone, the response is still being written.
                entered.set()
                release.wait(timeout=5.0)

        thread = threading.Thread(target=exchange, daemon=True)
        thread.start()
        assert entered.wait(timeout=5.0)
        assert service.inflight == 0  # no admission slot held...
        assert service.wait_idle(grace=0.05) is False  # ...but not idle
        release.set()
        assert service.wait_idle(grace=5.0) is True
        thread.join(timeout=5.0)
        service.close()

    def test_drain_does_not_cut_off_inflight_response(self):
        """Responses that already left admit() still complete (and are
        metered) before drain() returns."""
        server = PlanServer(ServerConfig(port=0, workers=0, cache_capacity=16))
        server.start()
        results = {}

        def slow_client():
            with ServerClient(port=server.port) as client:
                results["body"] = client.optimize(SQL)

        thread = threading.Thread(target=slow_client, daemon=True)
        thread.start()
        # Let the request get admitted, then drain concurrently.
        time.sleep(0.02)
        clean = server.drain(grace=10.0)
        thread.join(timeout=10.0)
        assert clean is True
        assert results["body"]["cost"] > 0
        # The exchange's metrics record was not lost to the shutdown.
        snapshot = server.service.metrics.snapshot()
        assert snapshot["requests"]["POST /optimize"]["count"] == 1

    def test_exchange_counter_balanced_after_traffic(self):
        server = PlanServer(ServerConfig(port=0, workers=0, cache_capacity=16))
        with server:
            with ServerClient(port=server.port) as client:
                for _ in range(3):
                    client.optimize(SQL)
            assert server.service.wait_idle(grace=1.0) is True
