"""`PlannerSession` / `PreparedStatement` / `PlanHandle`: the fluent flow."""

import json
import random

import pytest

from repro.api import OptimizerConfig, PlannerSession
from repro.exec import execute
from repro.query.canonical import canonical_plan
from repro.sql.catalog import TableStats
from repro.tpch import build_ex, micro_database
from repro.workload import generate_workload

SQL = (
    "SELECT ns.n_name, count(*) AS cnt FROM nation ns "
    "JOIN supplier s ON ns.n_nationkey = s.s_nationkey GROUP BY ns.n_name"
)

BUILTINS = ("dphyp", "ea-all", "ea-prune", "h1", "h2")


@pytest.fixture
def session():
    return PlannerSession.tpch()


class TestSessionPipeline:
    def test_sql_requires_catalog(self):
        with pytest.raises(ValueError, match="no catalog"):
            PlannerSession().sql(SQL)

    def test_sql_round_trip_on_tpch_sample_data(self, session):
        """sql → optimize → execute, cross-checked against the canonical plan."""
        statement = session.sql(SQL)
        handle = statement.optimize()
        database = micro_database(statement.query)
        result = handle.execute(database)
        assert result == execute(canonical_plan(statement.query), database)

    def test_session_database_is_the_default_target(self):
        query = build_ex(scale_factor=1.0)
        session = PlannerSession(database=micro_database(query))
        handle = session.statement(query).optimize()
        assert handle.execute() == execute(canonical_plan(query), session.database)

    def test_execute_without_database_raises(self, session):
        handle = session.sql(SQL).optimize()
        with pytest.raises(ValueError, match="no database"):
            handle.execute()

    def test_execute_picks_the_backend(self, session):
        statement = session.sql(SQL)
        handle = statement.optimize()
        database = micro_database(statement.query)
        reference = handle.execute(database, executor="interpreter")
        assert handle.execute(database, executor="columnar") == reference

    def test_execute_limit_truncates(self, session):
        statement = session.sql(SQL)
        handle = statement.optimize()
        database = micro_database(statement.query)
        assert len(handle.execute(database, limit=2)) == 2
        assert len(handle.execute(database, limit=0)) == 0

    def test_execute_unknown_backend_raises(self, session):
        statement = session.sql(SQL)
        handle = statement.optimize()
        with pytest.raises(ValueError, match="unknown executor"):
            handle.execute(micro_database(statement.query), executor="gpu")

    def test_session_dataset_resolves_per_query(self):
        # A Dataset as the session database: PlanHandle.execute binds
        # only the query's relations, through both backends.
        from repro.tpch.datagen import scaled_dataset

        session = PlannerSession.tpch(database=scaled_dataset(0.001))
        reference = session.execute(SQL, executor="interpreter")
        columnar = session.execute(SQL, executor="columnar")
        assert columnar == reference
        assert len(reference) > 0

    def test_one_shot_optimize_accepts_sql(self, session):
        handle = session.optimize(SQL)
        assert handle.strategy == "ea-prune"
        assert handle.cost > 0

    def test_per_call_overrides_leave_session_config_alone(self, session):
        handle = session.optimize(SQL, strategy="h1")
        assert handle.strategy == "h1"
        assert session.config.strategy == "ea-prune"

    def test_explain_renders_a_plan(self, session):
        text = session.sql(SQL).explain()
        assert "Γ" in text or "Π" in text


class TestStrategyComparison:
    def test_all_builtin_strategies(self, session):
        comparison = session.sql(SQL).optimize_all_strategies(strategies=BUILTINS)
        assert tuple(handle.strategy for handle in comparison) == BUILTINS
        best = comparison.best
        assert best.cost == min(handle.cost for handle in comparison)
        assert comparison.winner == best.strategy
        # eager aggregation wins on this query: DPhyp cannot be the winner
        assert comparison["dphyp"].cost > best.cost

    def test_default_covers_every_registered_strategy(self, session):
        comparison = session.sql(SQL).optimize_all_strategies()
        names = {handle.strategy for handle in comparison}
        assert set(BUILTINS) <= names

    def test_to_dict(self, session):
        comparison = session.sql(SQL).optimize_all_strategies(strategies=("dphyp", "h1"))
        payload = json.loads(json.dumps(comparison.to_dict()))
        assert payload["winner"] in ("dphyp", "h1")
        assert len(payload["strategies"]) == 2


class TestSessionCache:
    def test_second_optimize_is_a_cache_hit(self, session):
        statement = session.sql(SQL)
        first = statement.optimize()
        second = statement.optimize()
        assert not first.cache_hit
        assert second.cache_hit
        assert second.cost == first.cost

    def test_uncached_session(self):
        session = PlannerSession.tpch(config=OptimizerConfig(cache_capacity=None))
        assert session.cache is None
        statement = session.sql(SQL)
        assert not statement.optimize().cache_hit
        assert not statement.optimize().cache_hit

    def test_catalog_update_invalidates_cached_plans(self, session):
        session.sql(SQL).optimize()
        assert len(session.cache) == 1
        nation = session.catalog.lookup("nation")
        session.catalog.register(
            TableStats(
                name="nation",
                columns=nation.columns,
                cardinality=nation.cardinality * 2,
                distinct=dict(nation.distinct),
                keys=nation.keys,
            )
        )
        assert len(session.cache) == 0

    def test_close_detaches_the_catalog_watch(self, session):
        session.sql(SQL).optimize()
        session.close()
        nation = session.catalog.lookup("nation")
        session.catalog.register(nation)
        assert len(session.cache) == 1  # no longer invalidated


class TestEvents:
    def test_hooks_fire_across_the_pipeline(self):
        session = PlannerSession.tpch(config=OptimizerConfig(cache_capacity=None))
        seen = {"prepare": 0, "ccp": 0, "plan": 0, "result": 0}
        for event in seen:
            session.on(event, lambda *args, event=event: seen.__setitem__(event, seen[event] + 1))
        session.sql(SQL).optimize()
        assert seen["prepare"] == 1
        assert seen["ccp"] >= 1
        assert seen["plan"] >= 2
        assert seen["result"] == 1

    def test_result_fires_for_cache_hits_too(self, session):
        results = []
        session.on("result", results.append)
        statement = session.sql(SQL)
        statement.optimize()
        statement.optimize()
        assert len(results) == 2
        assert results[1].cache_hit

    def test_unsubscribe(self, session):
        results = []
        unsubscribe = session.on("result", results.append)
        session.sql(SQL).optimize()
        unsubscribe()
        unsubscribe()  # idempotent
        session.sql(SQL).optimize()
        assert len(results) == 1

    def test_unknown_event_rejected(self, session):
        with pytest.raises(ValueError, match="unknown event"):
            session.on("finish", print)


class TestPlanHandleSerialization:
    def test_to_dict_is_json_ready(self, session):
        payload = session.sql(SQL).optimize().to_dict()
        decoded = json.loads(json.dumps(payload))
        assert decoded["strategy"] == "ea-prune"
        assert decoded["cost_model"] == "cout"
        assert decoded["cost"] > 0
        assert decoded["cache_hit"] is False

    def test_plan_tree_structure(self, session):
        plan = session.sql(SQL).optimize().to_dict()["plan"]
        ops = set()

        def walk(node):
            ops.add(node["op"])
            for key in ("input", "left", "right"):
                if key in node:
                    walk(node[key])

        walk(plan)
        assert "scan" in ops
        assert "groupby" in ops


class TestSessionBatch:
    def test_run_batch_uses_the_session_cache(self):
        session = PlannerSession(config=OptimizerConfig(workers=1, cache_capacity=64))
        workload = generate_workload(6, 3, random.Random(3), unique=2)
        cold = session.run_batch(workload)
        warm = session.run_batch(workload)
        assert cold.hits == 4  # in-batch dedup of the repeated shapes
        assert warm.hit_rate == 1.0

    def test_batch_costs_match_single_query_path(self):
        session = PlannerSession(config=OptimizerConfig(workers=1, cache_capacity=64))
        single = PlannerSession(config=OptimizerConfig(cache_capacity=None))
        workload = generate_workload(5, 3, random.Random(11))
        report = session.run_batch(workload)
        for item, query in zip(report.items, workload):
            assert item.cost == single.optimize(query).cost

    def test_batch_emits_result_events(self):
        session = PlannerSession(config=OptimizerConfig(workers=1, cache_capacity=None))
        results = []
        session.on("result", results.append)
        workload = generate_workload(4, 3, random.Random(5))
        session.run_batch(workload)
        assert len(results) == 4
