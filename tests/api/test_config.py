"""`OptimizerConfig`: defaults, eager validation, immutable overrides."""

import dataclasses

import pytest

from repro.api import CoutModel, OptimizerConfig
from repro.optimizer.strategies import EaPruneStrategy, H2Strategy


class TestDefaults:
    def test_default_values(self):
        config = OptimizerConfig()
        assert config.strategy == "ea-prune"
        assert config.factor == 1.03
        assert config.cost_model == "cout"
        assert config.workers is None
        assert config.cache_capacity == 512
        assert config.caching_enabled

    def test_resolution(self):
        config = OptimizerConfig()
        assert isinstance(config.resolve_strategy(), EaPruneStrategy)
        assert isinstance(config.resolve_cost_model(), CoutModel)
        assert config.strategy_name == "ea-prune"
        assert config.cost_model_name == "cout"

    def test_factor_reaches_h2(self):
        strategy = OptimizerConfig(strategy="h2", factor=1.1).resolve_strategy()
        assert isinstance(strategy, H2Strategy)
        assert strategy.factor == 1.1

    def test_strategy_instance_accepted(self):
        instance = EaPruneStrategy("cost-only")
        config = OptimizerConfig(strategy=instance)
        assert config.resolve_strategy() is instance
        assert config.strategy_name == "ea-prune[cost-only]"

    def test_cost_model_instance_accepted(self):
        model = CoutModel()
        config = OptimizerConfig(cost_model=model)
        assert config.resolve_cost_model() is model
        assert config.cost_model_name == "cout"

    @pytest.mark.parametrize("capacity", [None, 0])
    def test_caching_disabled(self, capacity):
        assert not OptimizerConfig(cache_capacity=capacity).caching_enabled


class TestValidation:
    def test_unknown_strategy(self):
        with pytest.raises(ValueError, match="unknown strategy 'magic'.*ea-prune"):
            OptimizerConfig(strategy="magic")

    def test_unknown_cost_model(self):
        with pytest.raises(ValueError, match="unknown cost model 'free'.*cout"):
            OptimizerConfig(cost_model="free")

    def test_strategy_type(self):
        with pytest.raises(TypeError, match="strategy"):
            OptimizerConfig(strategy=42)

    def test_cost_model_type(self):
        with pytest.raises(TypeError, match="cost_model"):
            OptimizerConfig(cost_model=42)

    @pytest.mark.parametrize("factor", [0.99, 0.0, float("nan")])
    def test_factor_below_one(self, factor):
        with pytest.raises(ValueError, match="tolerance factor"):
            OptimizerConfig(factor=factor)

    @pytest.mark.parametrize("workers", [0, -2])
    def test_bad_workers(self, workers):
        with pytest.raises(ValueError, match="workers"):
            OptimizerConfig(workers=workers)

    def test_bad_cache_capacity(self):
        with pytest.raises(ValueError, match="cache_capacity"):
            OptimizerConfig(cache_capacity=-1)

    def test_frozen(self):
        config = OptimizerConfig()
        with pytest.raises(dataclasses.FrozenInstanceError):
            config.strategy = "h1"


class TestOverrides:
    def test_with_overrides_derives(self):
        base = OptimizerConfig()
        derived = base.with_overrides(strategy="h2", factor=1.1)
        assert (derived.strategy, derived.factor) == ("h2", 1.1)
        assert derived.cost_model == base.cost_model
        # the original is untouched
        assert (base.strategy, base.factor) == ("ea-prune", 1.03)

    def test_overrides_are_validated(self):
        with pytest.raises(ValueError, match="tolerance factor"):
            OptimizerConfig().with_overrides(factor=0.5)
        with pytest.raises(ValueError, match="unknown strategy"):
            OptimizerConfig().with_overrides(strategy="magic")

    def test_unknown_field_rejected(self):
        with pytest.raises(ValueError, match="stragety"):
            OptimizerConfig().with_overrides(stragety="h1")
