"""Strategy/cost-model registries: built-ins, errors, third-party plug-in.

The acceptance bar: a strategy and a cost model registered here — without
touching ``repro.optimizer.driver`` — must be selectable by name through
:class:`OptimizerConfig` and produce plans through the session.
"""

import random

import pytest

from repro.api import (
    COST_MODELS,
    STRATEGIES,
    CostModel,
    OptimizerConfig,
    PlannerSession,
    Strategy,
)
from repro.optimizer import make_strategy
from repro.optimizer.strategies import (
    DphypStrategy,
    EaAllStrategy,
    EaPruneStrategy,
    H1Strategy,
    H2Strategy,
)
from repro.service.fingerprint import cache_key
from repro.workload import generate_query

BUILTINS = ("dphyp", "ea-all", "ea-prune", "h1", "h2")


class TestStrategyRegistry:
    def test_builtins_registered_in_order(self):
        assert STRATEGIES.names()[:5] == BUILTINS

    def test_make_strategy_is_a_registry_lookup(self):
        assert isinstance(make_strategy("dphyp"), DphypStrategy)
        assert isinstance(make_strategy("ea-all"), EaAllStrategy)
        assert isinstance(make_strategy("ea-prune"), EaPruneStrategy)
        assert isinstance(make_strategy("h1"), H1Strategy)
        assert isinstance(make_strategy("h2", 1.2), H2Strategy)
        assert make_strategy("h2", 1.2).factor == 1.2

    def test_aliases_and_case(self):
        assert isinstance(make_strategy("PRUNE"), EaPruneStrategy)
        assert isinstance(make_strategy("ea_all"), EaAllStrategy)
        # aliases resolve but stay out of the primary listing
        assert "all" in STRATEGIES
        assert "all" not in STRATEGIES.names()

    def test_unknown_name(self):
        with pytest.raises(ValueError, match="unknown strategy 'magic'.*registered:"):
            make_strategy("magic")

    def test_duplicate_registration_rejected(self):
        with pytest.raises(ValueError, match="already registered"):
            STRATEGIES.register("dphyp")(lambda **_: DphypStrategy())

    def test_replace_opt_in(self):
        original = STRATEGIES._factories["dphyp"]
        try:
            STRATEGIES.register("dphyp", replace=True)(lambda **_: H1Strategy())
            assert isinstance(make_strategy("dphyp"), H1Strategy)
        finally:
            STRATEGIES.register("dphyp", replace=True)(original)
        assert isinstance(make_strategy("dphyp"), DphypStrategy)

    def test_replace_retires_old_aliases(self):
        from repro.optimizer.registry import StrategyRegistry

        registry = StrategyRegistry()
        registry.register("mine", "my-alias")(lambda **_: DphypStrategy())
        registry.register("mine", "mk2", replace=True)(lambda **_: H1Strategy())
        # the stale alias must not keep resolving to the replaced factory
        assert "my-alias" not in registry
        assert isinstance(registry.create("mine"), H1Strategy)
        assert isinstance(registry.create("mk2"), H1Strategy)
        assert registry.names() == ("mine",)

    def test_replace_through_an_alias_is_rejected(self):
        from repro.optimizer.registry import StrategyRegistry

        registry = StrategyRegistry()
        registry.register("mine", "my-alias")(lambda **_: DphypStrategy())
        with pytest.raises(ValueError, match="alias"):
            registry.register("my-alias", replace=True)(lambda **_: H1Strategy())


class TestCostModelRegistry:
    def test_cout_registered(self):
        assert "cout" in COST_MODELS
        assert COST_MODELS.names()[0] == "cout"
        assert COST_MODELS.create("cout").name == "cout"

    def test_unknown_cost_model(self):
        with pytest.raises(ValueError, match="unknown cost model"):
            COST_MODELS.create("free-lunch")


# -- third-party plug-ins (registered once, used by the tests below) ---------


class KeepCheapestStrategy(Strategy):
    """A minimal third-party strategy: single cheapest plan per class."""

    name = "keep-cheapest-test"

    def insert(self, bucket, plan):
        if not bucket:
            bucket.append(plan)
        elif plan.cost < bucket[0].cost:
            bucket[0] = plan


class PaidScansModel(CostModel):
    """Cout plus a charge for every scanned row."""

    name = "paid-scans-test"

    def scan(self, cardinality):
        return cardinality

    def join(self, op, output_cardinality, left, right):
        return output_cardinality

    def group(self, output_cardinality, child):
        return output_cardinality


if "keep-cheapest-test" not in STRATEGIES:
    STRATEGIES.register("keep-cheapest-test")(lambda **_: KeepCheapestStrategy())
if "paid-scans-test" not in COST_MODELS:
    COST_MODELS.register("paid-scans-test")(PaidScansModel)


@pytest.fixture
def query():
    return generate_query(4, random.Random(7))


class TestThirdPartyPlugins:
    def test_strategy_selected_by_name_through_config(self, query):
        session = PlannerSession(
            config=OptimizerConfig(strategy="keep-cheapest-test", cache_capacity=None)
        )
        handle = session.optimize(query)
        assert handle.strategy == "keep-cheapest-test"
        # keeping one plan per class is a heuristic: never below the optimum
        optimal = session.optimize(query, strategy="ea-prune")
        assert handle.cost >= optimal.cost * (1 - 1e-9)

    def test_cost_model_selected_by_name_through_config(self, query):
        session = PlannerSession(config=OptimizerConfig(cache_capacity=None))
        cout = session.optimize(query)
        paid = session.optimize(query, cost_model="paid-scans-test")
        # scans now cost their cardinality, so every plan got strictly dearer
        assert paid.cost > cout.cost

    def test_cost_models_never_share_cache_entries(self, query):
        default = cache_key(query, "ea-prune")
        paid = cache_key(query, "ea-prune", cost_model="paid-scans-test")
        assert default != paid
        assert default.digest() != paid.digest()

    def test_session_cache_keeps_models_separate(self, query):
        session = PlannerSession(config=OptimizerConfig(cache_capacity=8))
        first = session.optimize(query)
        other_model = session.optimize(query, cost_model="paid-scans-test")
        assert not other_model.cache_hit
        repeat = session.optimize(query)
        assert repeat.cache_hit
        assert repeat.cost == first.cost
