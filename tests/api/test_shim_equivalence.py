"""The old free functions and the session path must be the same optimizer.

`parse_query` / `prepare` / `optimize` / `run_batch` stay supported as
shims; these tests pin them to the `PlannerSession` flow — identical
plans, identical costs — so neither surface can drift.
"""

import random

import pytest

from repro.api import OptimizerConfig, PlannerSession
from repro.optimizer import optimize, prepare
from repro.plans import render_plan
from repro.service import PlanCache, run_batch
from repro.service.fingerprint import query_fingerprint
from repro.sql import Catalog, parse_query
from repro.tpch import TPCH_QUERIES
from repro.workload import generate_query, generate_workload

SQL = (
    "SELECT ns.n_name, count(*) AS cnt FROM nation ns "
    "JOIN supplier s ON ns.n_nationkey = s.s_nationkey GROUP BY ns.n_name"
)

STRATEGIES = ("dphyp", "ea-all", "ea-prune", "h1", "h2")


def _uncached_session(**kwargs):
    return PlannerSession(config=OptimizerConfig(cache_capacity=None), **kwargs)


class TestOptimizeShim:
    @pytest.mark.parametrize("strategy", STRATEGIES)
    def test_identical_plans_on_tpch(self, strategy):
        query = TPCH_QUERIES["Q3"](1.0)
        legacy = optimize(query, strategy)
        handle = _uncached_session().statement(query).optimize(strategy=strategy)
        assert handle.cost == legacy.cost
        assert handle.explain() == render_plan(legacy.plan.node)

    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_identical_plans_on_random_workload(self, seed):
        query = generate_query(5, random.Random(seed))
        legacy = optimize(query, "ea-prune")
        handle = _uncached_session().statement(query).optimize()
        assert handle.cost == legacy.cost
        assert handle.explain() == render_plan(legacy.plan.node)

    def test_config_object_equals_legacy_kwargs(self):
        query = generate_query(4, random.Random(9))
        legacy = optimize(query, "h2", factor=1.1)
        via_config = optimize(query, config=OptimizerConfig(strategy="h2", factor=1.1))
        assert via_config.cost == legacy.cost
        assert render_plan(via_config.plan.node) == render_plan(legacy.plan.node)


class TestParseShim:
    def test_parse_query_matches_session_sql(self):
        legacy = parse_query(SQL, Catalog.from_tpch())
        statement = PlannerSession.tpch().sql(SQL)
        assert query_fingerprint(legacy) == query_fingerprint(statement.query)

    def test_prepare_shim_still_feeds_optimize(self):
        query = parse_query(SQL, Catalog.from_tpch())
        prepared = prepare(query)
        assert optimize(query, prepared=prepared).cost == optimize(query).cost


class TestBatchShim:
    def test_run_batch_matches_session_run_batch(self):
        workload = generate_workload(6, 3, random.Random(21), unique=3)
        legacy = run_batch(workload, "ea-prune", workers=1, cache=PlanCache(capacity=32))
        session = PlannerSession(config=OptimizerConfig(workers=1, cache_capacity=32))
        report = session.run_batch(workload)
        assert [item.cost for item in report.items] == [item.cost for item in legacy.items]
        assert [item.cache_hit for item in report.items] == [
            item.cache_hit for item in legacy.items
        ]


class TestPreparedMismatch:
    """Satellite fix: a wrong pre-pass must raise even on a cache hit."""

    def test_mismatch_raises_before_cache_serve(self):
        catalog = Catalog.from_tpch()
        query = parse_query(SQL, catalog)
        twin = parse_query(SQL, catalog)  # same problem, different object
        cache = PlanCache(capacity=8)
        optimize(query, cache=cache)  # warm: twin's key now hits
        with pytest.raises(ValueError, match="different query"):
            optimize(twin, prepared=prepare(query), cache=cache)

    def test_mismatch_raises_without_cache_too(self):
        catalog = Catalog.from_tpch()
        query = parse_query(SQL, catalog)
        twin = parse_query(SQL, catalog)
        with pytest.raises(ValueError, match="different query"):
            optimize(twin, prepared=prepare(query))
