"""Cache hardening: locked stats snapshots and honest clear() accounting."""

import threading

from repro.service import PlanCache
from repro.service.fingerprint import PlanCacheKey


def key(tag: str) -> PlanCacheKey:
    return PlanCacheKey(fingerprint=tag, snapshot="snap", strategy="ea-prune")


class Plan:
    def __init__(self, tag):
        self.tag = tag


class TestClearCountsInvalidations:
    def test_clear_matches_invalidate_none(self):
        cache = PlanCache(capacity=8)
        for i in range(3):
            cache.put(key(f"q{i}"), Plan(i))
        removed = cache.clear()
        assert removed == 3
        assert len(cache) == 0
        assert cache.stats.invalidations == 3

    def test_describe_stays_honest_after_clear(self):
        cache = PlanCache(capacity=8)
        cache.put(key("a"), Plan("a"))
        cache.put(key("b"), Plan("b"))
        cache.clear()
        metrics = cache.describe()
        assert metrics["invalidations"] == 2.0
        assert metrics["size"] == 0.0

    def test_clear_of_empty_cache_counts_nothing(self):
        cache = PlanCache(capacity=8)
        assert cache.clear() == 0
        assert cache.stats.invalidations == 0


class TestLockedStatsSnapshot:
    def test_snapshot_copies_all_counters(self):
        cache = PlanCache(capacity=1)
        cache.get(key("miss"))
        cache.put(key("a"), Plan("a"))
        cache.put(key("b"), Plan("b"))  # evicts a
        cache.get(key("b"))
        cache.clear()
        snap = cache.stats_snapshot()
        assert (snap.hits, snap.misses, snap.puts, snap.evictions, snap.invalidations) == (
            1, 1, 2, 1, 1
        )
        # it is a copy: later activity does not mutate it
        cache.get(key("another-miss"))
        assert snap.misses == 1

    def test_concurrent_hammer_keeps_snapshots_consistent(self):
        """Thread-hammer regression for torn stats reads.

        Every mutation holds the cache lock and keeps the invariant
        ``puts - evictions - invalidations == len(entries)`` (bounded by
        capacity).  A snapshot taken under the same lock must therefore
        satisfy it too; the old unlocked ``stats.snapshot()`` could
        interleave with a put+eviction pair and report an impossible
        state.
        """
        cache = PlanCache(capacity=4)
        stop = threading.Event()
        violations = []

        def mutate(worker: int) -> None:
            i = 0
            while not stop.is_set():
                cache.put(key(f"w{worker}-{i}"), Plan(i))
                cache.get(key(f"w{worker}-{i}"))
                cache.get(key(f"w{worker}-missing-{i}"))
                if i % 50 == 0:
                    cache.invalidate(None)
                i += 1

        def observe() -> None:
            while not stop.is_set():
                snap = cache.stats_snapshot()
                live = snap.puts - snap.evictions - snap.invalidations
                if not (0 <= live <= cache.capacity):
                    violations.append(
                        f"puts={snap.puts} evictions={snap.evictions} "
                        f"invalidations={snap.invalidations} -> live={live}"
                    )
                if snap.lookups != snap.hits + snap.misses:
                    violations.append("lookups != hits + misses")

        mutators = [threading.Thread(target=mutate, args=(w,)) for w in range(4)]
        observers = [threading.Thread(target=observe) for _ in range(2)]
        for thread in mutators + observers:
            thread.start()
        threading.Event().wait(0.5)
        stop.set()
        for thread in mutators + observers:
            thread.join(timeout=10.0)
        assert not violations, violations[:5]
        # final totals add up once quiescent
        final = cache.stats_snapshot()
        assert final.puts - final.evictions - final.invalidations == len(cache)
