"""Cache hits across renamed queries must serve plans in the *new* names."""

import pytest

from repro.optimizer import optimize
from repro.plans import render_plan
from repro.service import PlanCache, cache_key, optimize_many
from repro.sql import Catalog, parse_query
from repro.sql.catalog import TableStats

SQL_NS = (
    "SELECT ns.n_name, count(*) AS cnt FROM nation ns "
    "JOIN supplier s ON ns.n_nationkey = s.s_nationkey GROUP BY ns.n_name"
)
SQL_XY = (
    "SELECT x.n_name, count(*) AS cnt FROM nation x "
    "JOIN supplier y ON x.n_nationkey = y.s_nationkey GROUP BY x.n_name"
)


@pytest.fixture()
def catalog():
    return Catalog.from_tpch()


def queries(catalog):
    return parse_query(SQL_NS, catalog), parse_query(SQL_XY, catalog)


class TestRenamedCacheHits:
    def test_aliases_share_the_cache_key(self, catalog):
        q_ns, q_xy = queries(catalog)
        assert cache_key(q_ns) == cache_key(q_xy)

    def test_hit_is_rebound_to_the_requesting_alias(self, catalog):
        q_ns, q_xy = queries(catalog)
        cache = PlanCache(capacity=8)
        fresh = optimize(q_ns, cache=cache)
        served = optimize(q_xy, cache=cache)

        assert served.cache_hit
        assert served.cost == fresh.cost
        rendered = render_plan(served.plan.node)
        assert "x.n_name" in rendered and "y.s_nationkey" in rendered
        assert "ns." not in rendered and "s." not in rendered

    def test_rebound_planinfo_properties_use_new_names(self, catalog):
        q_ns, q_xy = queries(catalog)
        cache = PlanCache(capacity=8)
        optimize(q_ns, cache=cache)
        served = optimize(q_xy, cache=cache)

        def ok(name):
            # Base attributes must carry the new aliases; synthetic columns
            # (aggregate outputs like "cnt") have no relation prefix.
            return name.startswith(("x.", "y.")) or "." not in name

        assert all(ok(a) for a in served.plan.raw_attrs)
        assert all(ok(a) for key in served.plan.keys for a in key)
        assert all(ok(a) for a in served.plan.distinct)

    def test_same_alias_hit_served_verbatim(self, catalog):
        q_ns, _ = queries(catalog)
        cache = PlanCache(capacity=8)
        fresh = optimize(q_ns, cache=cache)
        served = optimize(parse_query(SQL_NS, catalog), cache=cache)
        assert served.cache_hit
        assert served.plan is fresh.plan  # fast path: no rebuild

    def test_rebound_plan_executes_like_canonical(self, catalog):
        from repro.exec import execute
        from repro.query.canonical import canonical_plan
        from repro.tpch.datagen import micro_table

        q_ns, q_xy = queries(catalog)
        cache = PlanCache(capacity=8)
        optimize(q_ns, cache=cache)
        served = optimize(q_xy, cache=cache)
        assert served.cache_hit

        db = {"x": micro_table("nation", alias="x"), "y": micro_table("supplier", alias="y")}
        def rows(rel):
            return sorted(
                tuple(sorted((a, row[a]) for a in ("x.n_name", "cnt"))) for row in rel.rows
            )

        assert rows(execute(served.plan.node, db)) == rows(execute(canonical_plan(q_xy), db))

    def test_batch_rebinds_within_batch_duplicates(self, catalog):
        q_ns, q_xy = queries(catalog)
        items = list(optimize_many([q_ns, q_xy], workers=1))
        assert not items[0].cache_hit and items[1].cache_hit
        rendered = render_plan(items[1].result.plan.node)
        assert "x.n_name" in rendered and "ns." not in rendered


class TestBaseTableInvalidation:
    def test_invalidate_matches_base_table_not_alias(self, catalog):
        q_ns, _ = queries(catalog)
        cache = PlanCache(capacity=8)
        optimize(q_ns, cache=cache)
        assert cache.relations_of(cache.keys()[0]) == frozenset({"nation", "supplier"})
        assert cache.invalidate("nation") == 1

    def test_catalog_statistics_refresh_evicts_aliased_plans(self, catalog):
        q_ns, _ = queries(catalog)
        cache = PlanCache(capacity=8)
        cache.watch(catalog)
        optimize(q_ns, cache=cache)
        stats = catalog.lookup("nation")
        catalog.register(TableStats("nation", stats.columns, stats.cardinality * 2))
        assert len(cache) == 0
        assert cache.stats.invalidations == 1
