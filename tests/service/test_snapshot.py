"""PlanCache snapshot persistence: round-trip, refusal, atomicity."""

import json
import os

import pytest

from repro.service import PlanCache, SnapshotError
from repro.service.cache import SNAPSHOT_FORMAT, SNAPSHOT_VERSION
from repro.service.fingerprint import PlanCacheKey

CATALOG_FP = "a" * 64
OTHER_CATALOG_FP = "b" * 64


def key(tag: str) -> PlanCacheKey:
    return PlanCacheKey(fingerprint=tag, snapshot="snap", strategy="ea-prune")


class Plan:
    """Stand-in for an OptimizationResult (the cache never inspects it)."""

    def __init__(self, tag):
        self.tag = tag

    def __eq__(self, other):
        return isinstance(other, Plan) and other.tag == self.tag

    def __hash__(self):
        return hash(self.tag)


def populated(entries=3, capacity=8) -> PlanCache:
    cache = PlanCache(capacity=capacity)
    for index in range(entries):
        cache.put(key(f"q{index}"), Plan(f"p{index}"), relations=[f"rel{index}"])
    return cache


class TestRoundTrip:
    def test_save_load_preserves_entries(self, tmp_path):
        path = tmp_path / "shard.plancache"
        saved = populated().save_snapshot(path, catalog_fingerprint=CATALOG_FP)
        assert saved == 3

        cache = PlanCache(capacity=8)
        loaded = cache.load_snapshot(path, catalog_fingerprint=CATALOG_FP)
        assert loaded == 3
        assert cache.get(key("q1")).tag == "p1"
        assert cache.relations_of(key("q2")) == frozenset({"rel2"})

    def test_load_counts_as_puts(self, tmp_path):
        path = tmp_path / "shard.plancache"
        populated().save_snapshot(path, catalog_fingerprint=CATALOG_FP)
        cache = PlanCache(capacity=8)
        cache.load_snapshot(path, catalog_fingerprint=CATALOG_FP)
        assert cache.stats.puts == 3

    def test_load_respects_capacity_keeping_most_recent(self, tmp_path):
        path = tmp_path / "shard.plancache"
        populated(entries=6).save_snapshot(path, catalog_fingerprint=CATALOG_FP)
        cache = PlanCache(capacity=2)
        assert cache.load_snapshot(path, catalog_fingerprint=CATALOG_FP) == 2
        # The two most-recently-used entries survive, LRU order intact.
        assert cache.get(key("q0")) is None
        assert cache.get(key("q4")).tag == "p4"
        assert cache.get(key("q5")).tag == "p5"

    def test_header_readable_without_unpickling(self, tmp_path):
        path = tmp_path / "shard.plancache"
        populated().save_snapshot(
            path, catalog_fingerprint=CATALOG_FP, meta={"shard": 1}
        )
        header = PlanCache.read_snapshot_header(path)
        assert header["format"] == SNAPSHOT_FORMAT
        assert header["version"] == SNAPSHOT_VERSION
        assert header["catalog_fingerprint"] == CATALOG_FP
        assert header["entries"] == 3
        assert header["meta"] == {"shard": 1}

    def test_save_is_atomic_no_tmp_left_behind(self, tmp_path):
        path = tmp_path / "shard.plancache"
        populated().save_snapshot(path, catalog_fingerprint=CATALOG_FP)
        assert sorted(os.listdir(tmp_path)) == ["shard.plancache"]


class TestRefusal:
    """Every refusal must be a typed SnapshotError — callers treat any
    of these as "cold start", never "load anyway"."""

    def test_missing_file(self, tmp_path):
        with pytest.raises(SnapshotError) as excinfo:
            PlanCache().load_snapshot(
                tmp_path / "nope.plancache", catalog_fingerprint=CATALOG_FP
            )
        assert excinfo.value.reason == "missing"

    def test_catalog_fingerprint_mismatch(self, tmp_path):
        path = tmp_path / "shard.plancache"
        populated().save_snapshot(path, catalog_fingerprint=CATALOG_FP)
        cache = PlanCache()
        with pytest.raises(SnapshotError) as excinfo:
            cache.load_snapshot(path, catalog_fingerprint=OTHER_CATALOG_FP)
        assert excinfo.value.reason == "catalog"
        assert len(cache) == 0  # nothing partially loaded

    def test_version_mismatch(self, tmp_path):
        path = tmp_path / "shard.plancache"
        populated().save_snapshot(path, catalog_fingerprint=CATALOG_FP)
        header, blob = _split(path)
        header["version"] = SNAPSHOT_VERSION + 1
        _rewrite(path, header, blob)
        with pytest.raises(SnapshotError) as excinfo:
            PlanCache().load_snapshot(path, catalog_fingerprint=CATALOG_FP)
        assert excinfo.value.reason == "version"

    def test_foreign_format(self, tmp_path):
        path = tmp_path / "shard.plancache"
        path.write_bytes(b'{"format": "something-else"}\n')
        with pytest.raises(SnapshotError) as excinfo:
            PlanCache().load_snapshot(path, catalog_fingerprint=CATALOG_FP)
        assert excinfo.value.reason == "format"

    def test_tampered_payload_fails_checksum(self, tmp_path):
        path = tmp_path / "shard.plancache"
        populated().save_snapshot(path, catalog_fingerprint=CATALOG_FP)
        raw = bytearray(path.read_bytes())
        raw[-1] ^= 0xFF  # flip one payload byte
        path.write_bytes(bytes(raw))
        with pytest.raises(SnapshotError) as excinfo:
            PlanCache().load_snapshot(path, catalog_fingerprint=CATALOG_FP)
        assert excinfo.value.reason == "checksum"

    def test_truncated_payload_fails_checksum(self, tmp_path):
        path = tmp_path / "shard.plancache"
        populated().save_snapshot(path, catalog_fingerprint=CATALOG_FP)
        raw = path.read_bytes()
        path.write_bytes(raw[: len(raw) - 7])
        with pytest.raises(SnapshotError) as excinfo:
            PlanCache().load_snapshot(path, catalog_fingerprint=CATALOG_FP)
        assert excinfo.value.reason == "checksum"

    def test_garbage_header(self, tmp_path):
        path = tmp_path / "shard.plancache"
        path.write_bytes(b"\x80\x04garbage, not a json line")
        with pytest.raises(SnapshotError) as excinfo:
            PlanCache().load_snapshot(path, catalog_fingerprint=CATALOG_FP)
        assert excinfo.value.reason in ("corrupt", "format")


def _split(path):
    with open(path, "rb") as handle:
        header = json.loads(handle.readline())
        blob = handle.read()
    return header, blob


def _rewrite(path, header, blob):
    with open(path, "wb") as handle:
        handle.write(json.dumps(header, sort_keys=True).encode("utf-8"))
        handle.write(b"\n")
        handle.write(blob)
