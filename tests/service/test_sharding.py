"""Shard routing and catalog fingerprints: the async tier's contracts.

The whole no-lock design of the async tier rests on one invariant:
**a structural fingerprint always routes to the same shard**, so each
plan-cache entry has exactly one owning process.  These tests pin that
invariant (including under relation renaming, which fingerprints are
stable under) and check the hash spreads a realistic mixed-SQL workload
roughly uniformly.
"""

import random

import pytest

from repro.service.fingerprint import (
    catalog_fingerprint,
    query_fingerprint,
    shard_for_fingerprint,
)
from repro.sql.binder import parse_query
from repro.sql.catalog import Catalog, TableStats
from repro.workload import generate_sql_workload

SQL = (
    "SELECT count(*) FROM nation, supplier "
    "WHERE nation.n_nationkey = supplier.s_nationkey GROUP BY nation.n_name"
)
SQL_RENAMED = (
    "SELECT count(*) FROM nation AS n, supplier AS s "
    "WHERE n.n_nationkey = s.s_nationkey GROUP BY n.n_name"
)


class TestShardForFingerprint:
    def test_deterministic(self):
        fp = "deadbeef" * 8
        assert all(
            shard_for_fingerprint(fp, 4) == shard_for_fingerprint(fp, 4)
            for _ in range(10)
        )

    def test_in_range(self):
        rng = random.Random(7)
        for shards in (1, 2, 3, 7, 16):
            for _ in range(50):
                fp = f"{rng.getrandbits(256):064x}"
                assert 0 <= shard_for_fingerprint(fp, shards) < shards

    def test_single_shard_always_zero(self):
        assert shard_for_fingerprint("ff" * 32, 1) == 0

    def test_rejects_zero_shards(self):
        with pytest.raises(ValueError):
            shard_for_fingerprint("ab" * 32, 0)

    def test_renamed_query_routes_to_same_shard(self):
        """Fingerprints are rename-stable, so routing must be too —
        otherwise the alias spelling would decide which shard's cache
        gets the entry and isomorphic queries would miss each other."""
        catalog = Catalog.from_tpch()
        fp_a = query_fingerprint(parse_query(SQL, catalog))
        fp_b = query_fingerprint(parse_query(SQL_RENAMED, catalog))
        assert fp_a == fp_b
        for shards in (2, 3, 5):
            assert shard_for_fingerprint(fp_a, shards) == shard_for_fingerprint(
                fp_b, shards
            )

    def test_mixed_workload_spreads_roughly_uniformly(self):
        """No shard owns a grossly outsized share of a mixed workload."""
        catalog = Catalog.from_tpch()
        statements = generate_sql_workload(200, random.Random(11))
        fingerprints = {
            query_fingerprint(parse_query(sql, catalog)) for sql in statements
        }
        assert len(fingerprints) >= 50  # the workload is actually diverse
        shards = 4
        counts = [0] * shards
        for fp in fingerprints:
            counts[shard_for_fingerprint(fp, shards)] += 1
        expected = len(fingerprints) / shards
        for shard, count in enumerate(counts):
            assert count > expected * 0.5, (shard, counts)
            assert count < expected * 1.5, (shard, counts)


class TestCatalogFingerprint:
    def test_stable_for_identical_catalogs(self):
        assert catalog_fingerprint(Catalog.from_tpch()) == catalog_fingerprint(
            Catalog.from_tpch()
        )

    def test_scale_factor_changes_fingerprint(self):
        assert catalog_fingerprint(
            Catalog.from_tpch(scale_factor=1.0)
        ) != catalog_fingerprint(Catalog.from_tpch(scale_factor=2.0))

    def test_registering_a_table_changes_fingerprint(self):
        catalog = Catalog.from_tpch()
        before = catalog_fingerprint(catalog)
        catalog.register(
            TableStats(name="extra", columns=("x",), cardinality=10, distinct={"x": 10})
        )
        assert catalog_fingerprint(catalog) != before

    def test_cardinality_change_changes_fingerprint(self):
        catalog = Catalog.from_tpch()
        before = catalog_fingerprint(catalog)
        nation = catalog.lookup("nation")
        catalog.register(
            TableStats(
                name="nation",
                columns=nation.columns,
                cardinality=nation.cardinality * 2,
                distinct=dict(nation.distinct),
                keys=nation.keys,
            )
        )
        assert catalog_fingerprint(catalog) != before
