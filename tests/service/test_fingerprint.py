"""Fingerprint stability: renaming and reordering must not change the key."""

from repro.aggregates.calls import count_star, sum_
from repro.aggregates.vector import AggItem, AggVector
from repro.algebra.expressions import Attr, BinOp, Const, Logical
from repro.query.spec import JoinEdge, Query, RelationInfo
from repro.query.tree import TreeLeaf, TreeNode
from repro.rewrites.pushdown import OpKind
from repro.service import cache_key, cardinality_snapshot, query_fingerprint


def make_relation(name, cardinality=1000.0):
    attrs = (f"{name}.id", f"{name}.j", f"{name}.g", f"{name}.a")
    return RelationInfo(
        name=name,
        attributes=attrs,
        cardinality=cardinality,
        distinct={f"{name}.id": cardinality, f"{name}.g": 10.0},
        keys=(frozenset({f"{name}.id"}),),
    )


def make_query(
    names=("r0", "r1", "r2"),
    swap_equality=False,
    flip_comparison=False,
    local_order=(0, 1),
    op0=OpKind.INNER,
    join_attr0="j",
    group_suffix="g",
    selectivity0=0.01,
    cardinality0=1000.0,
):
    """A 3-relation query, parameterised so tests can vary one axis at a time."""
    a, b, c = names
    relations = [make_relation(a, cardinality0), make_relation(b), make_relation(c)]

    left, right = Attr(f"{a}.{join_attr0}"), Attr(f"{b}.j")
    predicate0 = right.eq(left) if swap_equality else left.eq(right)
    edge0 = JoinEdge(0, op0, predicate0, selectivity0)

    if flip_comparison:
        predicate1 = BinOp(">", Attr(f"{c}.g"), Attr(f"{b}.g"))
    else:
        predicate1 = BinOp("<", Attr(f"{b}.g"), Attr(f"{c}.g"))
    edge1 = JoinEdge(1, OpKind.INNER, predicate1, 0.1)

    tree = TreeNode(1, TreeNode(0, TreeLeaf(0), TreeLeaf(1)), TreeLeaf(2))

    conjuncts = [Attr(f"{a}.g").eq(Const(3)), Attr(f"{a}.a").eq(Const(7))]
    local = Logical("and", tuple(conjuncts[i] for i in local_order))

    return Query(
        relations,
        [edge0, edge1],
        tree,
        group_by=(f"{a}.{group_suffix}",),
        aggregates=AggVector([AggItem("cnt", count_star()), AggItem("s", sum_(f"{c}.a"))]),
        local_predicates={0: (local, 0.05)},
    )


class TestRenamingStability:
    def test_renamed_relations_share_fingerprint(self):
        assert query_fingerprint(make_query()) == query_fingerprint(
            make_query(names=("alpha", "beta", "gamma"))
        )

    def test_renamed_relations_share_snapshot(self):
        assert cardinality_snapshot(make_query()) == cardinality_snapshot(
            make_query(names=("alpha", "beta", "gamma"))
        )

    def test_renamed_relations_share_cache_key(self):
        assert cache_key(make_query()) == cache_key(make_query(names=("x", "y", "z")))


class TestReorderingStability:
    def test_equality_operand_order_is_canonical(self):
        assert query_fingerprint(make_query()) == query_fingerprint(
            make_query(swap_equality=True)
        )

    def test_comparison_direction_is_canonical(self):
        # b.g < c.g and c.g > b.g are the same predicate.
        assert query_fingerprint(make_query()) == query_fingerprint(
            make_query(flip_comparison=True)
        )

    def test_conjunct_order_is_canonical(self):
        assert query_fingerprint(make_query()) == query_fingerprint(
            make_query(local_order=(1, 0))
        )


class TestSensitivity:
    def test_different_join_attribute_changes_fingerprint(self):
        assert query_fingerprint(make_query()) != query_fingerprint(
            make_query(join_attr0="a")
        )

    def test_different_operator_changes_fingerprint(self):
        assert query_fingerprint(make_query()) != query_fingerprint(
            make_query(op0=OpKind.LEFT_OUTER)
        )

    def test_different_grouping_changes_fingerprint(self):
        assert query_fingerprint(make_query()) != query_fingerprint(
            make_query(group_suffix="j")
        )


class TestSnapshotSeparation:
    def test_statistics_change_snapshot_not_fingerprint(self):
        base, changed = make_query(), make_query(cardinality0=5000.0)
        assert query_fingerprint(base) == query_fingerprint(changed)
        assert cardinality_snapshot(base) != cardinality_snapshot(changed)
        assert cache_key(base) != cache_key(changed)

    def test_selectivity_changes_snapshot_not_fingerprint(self):
        base, changed = make_query(), make_query(selectivity0=0.5)
        assert query_fingerprint(base) == query_fingerprint(changed)
        assert cardinality_snapshot(base) != cardinality_snapshot(changed)


class TestSelectivityStructuralKeying:
    """Selectivities must be keyed to edges structurally, not by storage order.

    The fingerprint is storage-order invariant, so a snapshot that hashes
    selectivities in edge-list order loses the predicate→selectivity
    association: two different problems whose edge lists are permuted can
    share a full cache key and silently serve each other's plans.
    """

    @staticmethod
    def _tree_query(inner_sel, outer_sel, swap_storage=False):
        """P joins r0–r1 (inner tree position), Q joins (r0r1)–r2 (root)."""
        relations = [make_relation(n) for n in ("r0", "r1", "r2")]
        p = Attr("r0.j").eq(Attr("r1.j"))
        q = BinOp("<", Attr("r1.g"), Attr("r2.g"))
        if swap_storage:
            # edge 0 = Q at the root, edge 1 = P at the inner position.
            edges = [JoinEdge(0, OpKind.INNER, q, outer_sel), JoinEdge(1, OpKind.INNER, p, inner_sel)]
            tree = TreeNode(0, TreeNode(1, TreeLeaf(0), TreeLeaf(1)), TreeLeaf(2))
        else:
            edges = [JoinEdge(0, OpKind.INNER, p, inner_sel), JoinEdge(1, OpKind.INNER, q, outer_sel)]
            tree = TreeNode(1, TreeNode(0, TreeLeaf(0), TreeLeaf(1)), TreeLeaf(2))
        return Query(relations, edges, tree, group_by=("r0.g",), aggregates=AggVector([AggItem("cnt", count_star())]))

    def test_tree_position_selectivity_swap_changes_key(self):
        # Both queries store selectivities as [0.9, 0.001] in edge-list
        # order, but A puts 0.001 on the inner join and B puts 0.9 there.
        a = self._tree_query(inner_sel=0.001, outer_sel=0.9, swap_storage=True)
        b = self._tree_query(inner_sel=0.9, outer_sel=0.001, swap_storage=False)
        assert query_fingerprint(a) == query_fingerprint(b)  # same structure
        assert cardinality_snapshot(a) != cardinality_snapshot(b)
        assert cache_key(a) != cache_key(b)

    def test_tree_edge_storage_order_is_irrelevant(self):
        # The same problem spelled with permuted edge ids must share the key.
        a = self._tree_query(inner_sel=0.001, outer_sel=0.9, swap_storage=False)
        b = self._tree_query(inner_sel=0.001, outer_sel=0.9, swap_storage=True)
        assert cache_key(a) == cache_key(b)

    @staticmethod
    def _cyclic_query(p_sel, q_sel, swap_storage=False):
        """A cycle: tree edges r0–r1 and (r0r1)–r2, floating P and Q on r0–r2."""
        relations = [make_relation(n) for n in ("r0", "r1", "r2")]
        p = Attr("r0.a").eq(Attr("r2.a"))
        q = Attr("r0.g").eq(Attr("r2.g"))
        tree_e0 = JoinEdge(0, OpKind.INNER, Attr("r0.j").eq(Attr("r1.j")), 0.01)
        tree_e1 = JoinEdge(1, OpKind.INNER, Attr("r1.g").eq(Attr("r2.g")), 0.1)
        if swap_storage:
            floating = [JoinEdge(2, OpKind.INNER, q, q_sel), JoinEdge(3, OpKind.INNER, p, p_sel)]
        else:
            floating = [JoinEdge(2, OpKind.INNER, p, p_sel), JoinEdge(3, OpKind.INNER, q, q_sel)]
        tree = TreeNode(1, TreeNode(0, TreeLeaf(0), TreeLeaf(1)), TreeLeaf(2))
        return Query(relations, [tree_e0, tree_e1, *floating], tree, group_by=("r0.g",), aggregates=AggVector([AggItem("cnt", count_star())]))

    def test_floating_edge_selectivity_swap_changes_key(self):
        # Storage-ordered selectivities are [.., .., 0.001, 0.9] for both,
        # but A attaches 0.001 to predicate P and B attaches it to Q.
        a = self._cyclic_query(p_sel=0.001, q_sel=0.9, swap_storage=True)
        b = self._cyclic_query(p_sel=0.9, q_sel=0.001, swap_storage=False)
        assert query_fingerprint(a) == query_fingerprint(b)  # same structure
        assert cardinality_snapshot(a) != cardinality_snapshot(b)
        assert cache_key(a) != cache_key(b)

    def test_floating_edge_storage_order_is_irrelevant(self):
        a = self._cyclic_query(p_sel=0.001, q_sel=0.9, swap_storage=False)
        b = self._cyclic_query(p_sel=0.001, q_sel=0.9, swap_storage=True)
        assert cache_key(a) == cache_key(b)


class TestStrategyKeying:
    def test_strategies_do_not_share_keys(self):
        query = make_query()
        assert cache_key(query, "ea-prune") != cache_key(query, "dphyp")

    def test_h2_factor_participates(self):
        query = make_query()
        assert cache_key(query, "h2", factor=1.03) != cache_key(query, "h2", factor=1.5)

    def test_factor_irrelevant_for_non_h2(self):
        query = make_query()
        assert cache_key(query, "ea-prune", factor=1.03) == cache_key(
            query, "ea-prune", factor=1.5
        )

    def test_digest_is_stable_hex(self):
        digest = cache_key(make_query()).digest()
        assert len(digest) == 64
        int(digest, 16)  # valid hex


class TestOperatorKindSeparation:
    """The SQL operator surface must never share cache keys across kinds.

    A semijoin (EXISTS) and an antijoin (NOT EXISTS) over the same tables
    describe different optimization problems — Sec. 4's plan generators
    produce different plans for them — so serving one's plan for the other
    would be a correctness bug, not a stale-statistics inconvenience.
    """

    @staticmethod
    def _keys(*sqls):
        from repro.sql import Catalog, parse_query

        catalog = Catalog.from_tpch()
        return [cache_key(parse_query(sql, catalog)) for sql in sqls]

    def test_semijoin_antijoin_inner_outer_all_distinct(self):
        template = (
            "SELECT n.n_name, count(*) AS cnt FROM nation n WHERE {} "
            "(SELECT * FROM supplier s WHERE s.s_nationkey = n.n_nationkey) "
            "GROUP BY n.n_name"
        )
        joined = (
            "SELECT n.n_name, count(*) AS cnt FROM nation n "
            "{} supplier s ON s.s_nationkey = n.n_nationkey GROUP BY n.n_name"
        )
        keys = self._keys(
            template.format("EXISTS"),
            template.format("NOT EXISTS"),
            joined.format("JOIN"),
            joined.format("LEFT JOIN"),
            joined.format("FULL JOIN"),
        )
        assert len(set(keys)) == len(keys)

    def test_in_and_not_in_distinct(self):
        template = (
            "SELECT c.c_nationkey, count(*) AS cnt FROM customer c WHERE "
            "c.c_custkey {} (SELECT o.o_custkey FROM orders o) "
            "GROUP BY c.c_nationkey"
        )
        key_in, key_not_in = self._keys(template.format("IN"), template.format("NOT IN"))
        assert key_in != key_not_in

    def test_exists_and_in_same_problem_share_key(self):
        """EXISTS with an equality correlation and IN on the same columns
        bind to the identical semijoin — they must share a cache entry."""
        keys = self._keys(
            "SELECT c.c_nationkey, count(*) AS cnt FROM customer c WHERE EXISTS "
            "(SELECT * FROM orders o WHERE o.o_custkey = c.c_custkey) "
            "GROUP BY c.c_nationkey",
            "SELECT c.c_nationkey, count(*) AS cnt FROM customer c WHERE "
            "c.c_custkey IN (SELECT o.o_custkey FROM orders o) "
            "GROUP BY c.c_nationkey",
        )
        assert keys[0] == keys[1]

    def test_renamed_exists_query_shares_key(self):
        keys = self._keys(
            "SELECT n.n_name, count(*) AS cnt FROM nation n WHERE EXISTS "
            "(SELECT * FROM supplier s WHERE s.s_nationkey = n.n_nationkey) "
            "GROUP BY n.n_name",
            "SELECT x.n_name, count(*) AS cnt FROM nation x WHERE EXISTS "
            "(SELECT * FROM supplier y WHERE y.s_nationkey = x.n_nationkey) "
            "GROUP BY x.n_name",
        )
        assert keys[0] == keys[1]

    def test_right_join_shares_key_with_mirrored_left_join(self):
        """The normalization means both spellings are one problem."""
        keys = self._keys(
            "SELECT n.n_name, count(*) AS cnt FROM supplier s "
            "RIGHT JOIN nation n ON s.s_nationkey = n.n_nationkey "
            "GROUP BY n.n_name",
            "SELECT n.n_name, count(*) AS cnt FROM nation n "
            "LEFT JOIN supplier s ON s.s_nationkey = n.n_nationkey "
            "GROUP BY n.n_name",
        )
        assert keys[0] == keys[1]

    def test_is_null_variants_distinct(self):
        template = (
            "SELECT s.s_name, count(*) AS cnt FROM supplier s "
            "WHERE s.s_acctbal {} GROUP BY s.s_name"
        )
        key_null, key_not_null = self._keys(
            template.format("IS NULL"), template.format("IS NOT NULL")
        )
        assert key_null != key_not_null
