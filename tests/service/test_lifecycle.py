"""Plan-cache entry lifecycle: fresh → stale → revalidating → refreshed.

Unit coverage of the stale-while-revalidate machinery added for
statistics drift: state transitions on the cache itself, the degraded
refresh guard, banded-key migration through the
:class:`StaleRevalidator`, and the v1-snapshot refusal.
"""

import json
import pickle

import pytest

from repro.optimizer import OptimizerConfig, optimize
from repro.service import PlanCache
from repro.service.cache import (
    FRESH,
    REVALIDATING,
    SNAPSHOT_FORMAT,
    STALE,
    SnapshotError,
)
from repro.service.fingerprint import PlanCacheKey, cache_key, cardinality_snapshot
from repro.service.revalidate import StaleRevalidator
from repro.sql import parse_query
from repro.sql.catalog import Catalog, TableStats

SQL = (
    "SELECT ns.n_name, count(*) AS cnt FROM nation ns "
    "JOIN supplier s ON ns.n_nationkey = s.s_nationkey GROUP BY ns.n_name"
)


def key(tag: str) -> PlanCacheKey:
    return PlanCacheKey(fingerprint=tag, snapshot="snap", strategy="ea-prune")


class Plan:
    """Stand-in result — the lifecycle never inspects it."""

    degraded = False

    def __init__(self, tag):
        self.tag = tag

    def as_cache_hit(self):
        return self


class Degraded(Plan):
    degraded = True


class TestStateTransitions:
    def test_fresh_store_serves_fresh(self):
        cache = PlanCache(capacity=4)
        cache.put(key("q"), Plan("p"))
        assert cache.entry_state(key("q")) == FRESH
        assert cache.stale_count() == 0

    def test_mark_stale_keeps_entry_servable(self):
        cache = PlanCache(capacity=4)
        cache.put(key("q"), Plan("p"), relations=["orders"])
        assert cache.mark_stale("orders") == 1
        assert cache.entry_state(key("q")) == STALE
        assert cache.get(key("q")).tag == "p"  # still serves
        assert cache.stats.stale_hits == 0  # plain get is not lifecycle-aware

    def test_mark_stale_skips_non_fresh(self):
        cache = PlanCache(capacity=4)
        cache.put(key("q"), Plan("p"), relations=["orders"])
        cache.mark_stale("orders")
        assert cache.mark_stale("orders") == 0  # already stale
        cache.claim_stale()
        assert cache.mark_stale("orders") == 0  # claimed, leave alone

    def test_serve_entry_reports_state(self):
        cache = PlanCache(capacity=4)
        cache.put(key("q"), Plan("p"), relations=["orders"])
        _, state = cache.serve_entry(key("q"), query=None)
        assert state == FRESH
        cache.mark_stale("orders")
        _, state = cache.serve_entry(key("q"), query=None)
        assert state == STALE
        assert cache.stats.stale_hits == 1

    def test_exact_snapshot_drift_marks_stale_on_access(self):
        # The banded-key scenario: a drifted-but-nearby snapshot still
        # hits the structural entry; the exact mismatch flips it stale
        # so revalidation gets queued.
        cache = PlanCache(capacity=4)
        cache.put(key("q"), Plan("p"), exact_snapshot="cards-v1")
        _, state = cache.serve_entry(key("q"), query=None, exact_snapshot="cards-v2")
        assert state == STALE
        assert cache.stats.marked_stale == 1
        # Matching snapshot does not.
        cache.put(key("q2"), Plan("p2"), exact_snapshot="cards-v1")
        _, state = cache.serve_entry(key("q2"), query=None, exact_snapshot="cards-v1")
        assert state == FRESH

    def test_claim_transitions_and_bounds(self):
        cache = PlanCache(capacity=8)
        for i in range(3):
            cache.put(key(f"q{i}"), Plan(f"p{i}"), relations=["orders"], sql=f"sql{i}")
        cache.mark_stale("orders")
        claims = cache.claim_stale(limit=2)
        assert len(claims) == 2
        assert all(cache.entry_state(c.key) == REVALIDATING for c in claims)
        assert claims[0].sql == "sql0"
        # The third is still stale and claimable.
        assert len(cache.claim_stale()) == 1

    def test_claim_stale_drains_hottest_first(self):
        # Skewed traffic: q2 is hammered, q0 touched once, q1 never.
        # A bounded claim must hand the revalidator q2 before the rest.
        cache = PlanCache(capacity=8)
        for i in range(3):
            cache.put(key(f"q{i}"), Plan(f"p{i}"), relations=["orders"], sql=f"sql{i}")
        for _ in range(10):
            cache.get(key("q2"))
        cache.get(key("q0"))
        cache.mark_stale("orders")
        (hottest,) = cache.claim_stale(limit=1)
        assert hottest.sql == "sql2"
        remaining = cache.claim_stale()
        assert [claim.sql for claim in remaining] == ["sql0", "sql1"]

    def test_claim_stale_ties_keep_insertion_order(self):
        cache = PlanCache(capacity=8)
        for i in range(3):
            cache.put(key(f"q{i}"), Plan(f"p{i}"), relations=["orders"], sql=f"sql{i}")
        cache.mark_stale("orders")
        claims = cache.claim_stale()
        assert [claim.sql for claim in claims] == ["sql0", "sql1", "sql2"]

    def test_serve_entry_counts_hits_for_claim_priority(self):
        # The lifecycle-aware serving path feeds the same priority.
        cache = PlanCache(capacity=8)
        cache.put(key("cold"), Plan("c"), relations=["orders"], sql="cold")
        cache.put(key("hot"), Plan("h"), relations=["orders"], sql="hot")
        for _ in range(5):
            cache.serve_entry(key("hot"), query=None)
        cache.mark_stale("orders")
        claims = cache.claim_stale()
        assert [claim.sql for claim in claims] == ["hot", "cold"]

    def test_refresh_returns_to_fresh(self):
        cache = PlanCache(capacity=4)
        cache.put(key("q"), Plan("old"), relations=["orders"])
        cache.mark_stale("orders")
        (claim,) = cache.claim_stale()
        assert cache.refresh(claim.key, Plan("new"), exact_snapshot="cards-v2")
        assert cache.entry_state(key("q")) == FRESH
        assert cache.get(key("q")).tag == "new"
        assert cache.stats.refreshed == 1

    def test_refresh_migrates_to_new_key(self):
        # Re-optimization moved the snapshot past its band: the entry
        # must move to the new key, not linger under the old one.
        cache = PlanCache(capacity=4)
        cache.put(key("q"), Plan("old"), relations=["orders"])
        cache.mark_stale("orders")
        (claim,) = cache.claim_stale()
        assert cache.refresh(claim.key, Plan("new"), new_key=key("q-banded"))
        assert key("q") not in cache
        assert cache.get(key("q-banded")).tag == "new"
        assert cache.entry_state(key("q-banded")) == FRESH

    def test_refresh_refuses_degraded_results(self):
        # The degraded-plan cache guard extends to revalidation: a
        # background replan that blew its deadline must NOT overwrite
        # the cached optimal plan — the entry goes back to stale.
        cache = PlanCache(capacity=4)
        cache.put(key("q"), Plan("optimal"), relations=["orders"])
        cache.mark_stale("orders")
        (claim,) = cache.claim_stale()
        assert cache.refresh(claim.key, Degraded("fallback")) is False
        assert cache.entry_state(key("q")) == STALE  # retryable
        assert cache.get(key("q")).tag == "optimal"
        assert cache.stats.refreshed == 0

    def test_refresh_after_eviction_is_a_noop(self):
        cache = PlanCache(capacity=4)
        cache.put(key("q"), Plan("old"), relations=["orders"])
        cache.mark_stale("orders")
        (claim,) = cache.claim_stale()
        cache.drop(key("q"))
        assert cache.refresh(claim.key, Plan("new")) is False
        assert key("q") not in cache

    def test_requeue_returns_claim_to_stale(self):
        cache = PlanCache(capacity=4)
        cache.put(key("q"), Plan("p"), relations=["orders"])
        cache.mark_stale("orders")
        (claim,) = cache.claim_stale()
        cache.requeue(claim.key)
        assert cache.entry_state(key("q")) == STALE

    def test_store_refuses_degraded(self):
        cache = PlanCache(capacity=4)

        class Q:
            relations = ()

        cache.store(key("q"), Q(), Degraded("fallback"))
        assert key("q") not in cache


class TestSnapshotVersionRefusal:
    def test_v1_snapshot_refused_not_crashed(self, tmp_path):
        # PR-era v1 snapshots predate the lifecycle fields; loading one
        # must be a clean version refusal (cold start), never an unpickle
        # crash or a silent misread.
        path = tmp_path / "old.plancache"
        blob = pickle.dumps([(key("q"), Plan("p"), ("orders",), None)])
        header = {
            "format": SNAPSHOT_FORMAT,
            "version": 1,
            "catalog_fingerprint": "cat",
            "entries": 1,
            "checksum": "irrelevant",
            "meta": {},
        }
        path.write_bytes(json.dumps(header).encode("utf-8") + b"\n" + blob)
        cache = PlanCache(capacity=4)
        with pytest.raises(SnapshotError) as excinfo:
            cache.load_snapshot(path, catalog_fingerprint="cat")
        assert excinfo.value.reason == "version"
        assert len(cache) == 0  # cold start: nothing half-loaded

    def test_round_trip_preserves_lifecycle_state(self, tmp_path):
        cache = PlanCache(capacity=4)
        cache.put(key("f"), Plan("pf"), relations=["orders"], sql="sql-f",
                  exact_snapshot="cards")
        cache.put(key("s"), Plan("ps"), relations=["orders"], sql="sql-s")
        cache.mark_stale("orders")
        cache.claim_stale(limit=1)  # one entry REVALIDATING at save time
        path = tmp_path / "new.plancache"
        cache.save_snapshot(path, catalog_fingerprint="cat")

        restored = PlanCache(capacity=4)
        restored.load_snapshot(path, catalog_fingerprint="cat")
        # REVALIDATING demoted to STALE (the claim died with the process);
        # revalidation context survives.
        states = {restored.entry_state(key(tag)) for tag in ("f", "s")}
        assert states == {STALE}
        (claim, *rest) = restored.claim_stale()
        assert claim.sql in ("sql-f", "sql-s")


def store_plan(cache, catalog, config, sql=SQL):
    """Optimize *sql* and store it the way the servers do."""
    query = parse_query(sql, catalog)
    result = optimize(query, config=config)
    entry_key = cache_key(
        query,
        config.strategy,
        config.factor,
        cost_model=config.cost_model_name,
        band_width=config.snapshot_band_width,
    )
    cache.store(
        entry_key, query, result, sql=sql,
        exact_snapshot=cardinality_snapshot(query),
    )
    return entry_key, result


def drift(catalog, table, factor):
    old = catalog.lookup(table)
    rows = old.cardinality * factor
    catalog.update_stats(
        table,
        TableStats(
            name=old.name,
            columns=old.columns,
            cardinality=rows,
            distinct={c: min(v * factor, rows) for c, v in old.distinct.items()},
            keys=old.keys,
        ),
    )


class TestStaleRevalidator:
    def setup_method(self):
        self.catalog = Catalog.from_tpch()
        self.cache = PlanCache(capacity=16)
        self.config = OptimizerConfig(snapshot_band_width=1.0)

    def revalidator(self, config=None):
        return StaleRevalidator(self.cache, self.catalog, config or self.config)

    def test_unchanged_stats_recost_in_place(self):
        entry_key, cached = store_plan(self.cache, self.catalog, self.config)
        self.cache.mark_stale("supplier")
        counts = self.revalidator().drain()
        assert counts["recosted"] == 1
        assert self.cache.entry_state(entry_key) == FRESH
        served, state = self.cache.serve_entry(
            entry_key, parse_query(SQL, self.catalog)
        )
        assert state == FRESH
        assert served.cost == cached.cost  # bit-for-bit replay

    def post_drift_key(self, sql=SQL):
        return cache_key(
            parse_query(sql, self.catalog),
            self.config.strategy,
            self.config.factor,
            cost_model=self.config.cost_model_name,
            band_width=self.config.snapshot_band_width,
        )

    def test_mild_drift_recosts_without_replanning(self):
        _, cached = store_plan(self.cache, self.catalog, self.config)
        drift(self.catalog, "supplier", 1.5)  # within the recost bound
        self.cache.mark_stale("supplier")
        counts = self.revalidator().drain()
        assert counts["recosted"] == 1
        assert counts["replanned"] == 0
        after = self.post_drift_key()
        assert self.cache.entry_state(after) == FRESH
        served, _ = self.cache.serve_entry(after, parse_query(SQL, self.catalog))
        assert served.cost > cached.cost  # re-costed under the new rows

    def test_band_crossing_drift_migrates_the_key(self):
        entry_key, _ = store_plan(self.cache, self.catalog, self.config)
        drift(self.catalog, "supplier", 100.0)  # two decades: leaves the band
        self.cache.mark_stale("supplier")
        counts = self.revalidator().drain()
        assert counts["recosted"] + counts["replanned"] == 1
        assert entry_key not in self.cache
        expected = cache_key(
            parse_query(SQL, self.catalog),
            self.config.strategy,
            self.config.factor,
            cost_model=self.config.cost_model_name,
            band_width=self.config.snapshot_band_width,
        )
        assert self.cache.entry_state(expected) == FRESH

    def test_heavy_drift_replans(self):
        sql = (
            "SELECT c.c_custkey, sum(l.l_extendedprice) AS revenue "
            "FROM customer c "
            "JOIN orders o ON c.c_custkey = o.o_custkey "
            "JOIN lineitem l ON o.o_orderkey = l.l_orderkey "
            "GROUP BY c.c_custkey"
        )
        store_plan(self.cache, self.catalog, self.config, sql=sql)
        drift(self.catalog, "lineitem", 16.0)  # past the 2.0 recost bound
        self.cache.mark_stale("lineitem")
        counts = self.revalidator().drain()
        assert counts["replanned"] == 1
        assert self.cache.stale_count() == 0

    def test_entry_without_context_is_dropped(self):
        self.cache.put(key("opaque"), Plan("p"), relations=["supplier"])
        self.cache.mark_stale("supplier")
        counts = self.revalidator().drain()
        assert counts["dropped"] == 1
        assert key("opaque") not in self.cache

    def test_delta_subscription_marks_and_drains(self):
        store_plan(self.cache, self.catalog, self.config)
        revalidator = self.revalidator()
        revalidator.subscribe()
        try:
            drift(self.catalog, "supplier", 1.5)
            # The kick is asynchronous; drain synchronously for determinism.
            revalidator.drain()
            assert self.cache.entry_state(self.post_drift_key()) == FRESH
            assert self.cache.stats.refreshed == 1
            assert self.cache.stale_count() == 0
        finally:
            revalidator.close()
        # After close, further deltas no longer mark anything stale.
        drift(self.catalog, "supplier", 1.5)
        assert self.cache.stale_count() == 0
