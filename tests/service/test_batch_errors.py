"""Per-item fault isolation in the batch driver (worker-crash streaming).

A poisoned query — one that fingerprints fine but raises inside
``optimize()`` — must fail alone: every other item keeps its result, the
batch keeps streaming in order, the failure is visible in the report, and
nothing broken lands in the plan cache.
"""

import dataclasses
import random

import pytest

from repro.aggregates.calls import AggCall, AggKind
from repro.aggregates.vector import AggVector
from repro.algebra.expressions import Attr
from repro.optimizer.config import OptimizerConfig
from repro.query.spec import Query
from repro.service import PlanCache, optimize_many, run_batch
from repro.service.batch import _optimize_payload, resolve_config
from repro.workload import generate_workload


def workload(count, unique=None, n=4, seed=7):
    return generate_workload(count, n, random.Random(seed), unique=unique)


def poisoned(query: Query) -> Query:
    """A copy of *query* aggregating over an attribute no relation owns.

    Survives fingerprinting (unknown attributes canonicalise to literal
    tokens) but raises ``KeyError`` inside the optimizer — i.e. inside the
    pool worker, after dispatch.
    """
    items = list(query.aggregates)
    items[0] = dataclasses.replace(
        items[0], call=AggCall(AggKind.SUM, Attr("ghost.attr"))
    )
    return Query(
        query.relations, query.edges, query.tree, query.group_by,
        AggVector(items), query.local_predicates,
    )


class TestWorkerOutcome:
    def test_success_envelope(self):
        query = workload(1)[0]
        outcome = _optimize_payload((query, OptimizerConfig(cache_capacity=None)))
        assert outcome.ok
        assert outcome.error is None
        assert outcome.result.cost > 0

    def test_failure_envelope_instead_of_raising(self):
        query = poisoned(workload(1)[0])
        outcome = _optimize_payload((query, OptimizerConfig(cache_capacity=None)))
        assert not outcome.ok
        assert outcome.result is None
        assert "ghost.attr" in outcome.error
        assert outcome.error.startswith("KeyError")
        assert outcome.elapsed_seconds >= 0.0


@pytest.mark.parametrize("workers", [1, 3], ids=["serial", "pool"])
class TestPoisonedBatchStreaming:
    def test_other_items_survive_in_order(self, workers):
        queries = workload(6, seed=11)
        queries[2] = poisoned(queries[2])
        items = list(optimize_many(queries, workers=workers))
        assert [item.index for item in items] == list(range(6))
        assert [item.ok for item in items] == [True, True, False, True, True, True]
        assert all(item.result is not None for item in items if item.ok)
        failed = items[2]
        assert failed.result is None
        assert "ghost.attr" in failed.error
        assert not failed.cache_hit

    def test_duplicates_of_poisoned_query_all_fail(self, workers):
        queries = workload(4, seed=11)
        bad = poisoned(queries[0])
        queries = [bad, queries[1], bad, queries[3]]
        items = list(optimize_many(queries, workers=workers))
        assert [item.ok for item in items] == [False, True, False, True]
        # shared outcome, but duplicates are failures, not cache hits
        assert items[0].error == items[2].error
        assert not items[2].cache_hit

    def test_failures_never_pollute_the_cache(self, workers):
        queries = workload(4, seed=11)
        queries[1] = poisoned(queries[1])
        cache = PlanCache(capacity=16)
        items = list(optimize_many(queries, workers=workers, cache=cache))
        assert len(cache) == 3  # only the successes were stored
        assert items[1].key not in cache
        assert cache.stats.puts == 3

    def test_report_surfaces_failures(self, workers):
        queries = workload(5, seed=11)
        queries[4] = poisoned(queries[4])
        report = run_batch(queries, workers=workers, cache=PlanCache(capacity=16))
        assert report.total == 5
        assert report.failed == 1
        assert [item.index for item in report.failures] == [4]
        assert report.optimize_seconds > 0.0  # successes still timed

    def test_cost_on_failed_item_raises_with_context(self, workers):
        queries = [poisoned(workload(1)[0])]
        (item,) = list(optimize_many(queries, workers=workers))
        with pytest.raises(ValueError, match="failed to optimize"):
            item.cost


class TestAllPoisoned:
    def test_every_item_fails_batch_still_completes(self):
        queries = [poisoned(query) for query in workload(3, seed=13)]
        report = run_batch(queries, workers=2)
        assert report.failed == 3
        assert report.hits == 0
        assert report.optimize_seconds == 0.0


class TestResolveConfigConflicts:
    def test_config_alone_passes_through(self):
        config = OptimizerConfig(strategy="h1", cache_capacity=None)
        assert resolve_config(config, "ea-prune", 1.03, None) is config

    def test_legacy_kwargs_alone_build_a_config(self):
        config = resolve_config(None, "h2", 1.1, 3)
        assert config.strategy_name == "h2"
        assert config.factor == 1.1
        assert config.workers == 3

    def test_conflicting_strategy_raises(self):
        with pytest.raises(ValueError, match="strategy='h1'"):
            resolve_config(OptimizerConfig(), "h1", 1.03, None)

    def test_conflicting_factor_raises(self):
        with pytest.raises(ValueError, match="factor=1.5"):
            resolve_config(OptimizerConfig(), "ea-prune", 1.5, None)

    def test_conflict_raised_from_optimize_many(self):
        with pytest.raises(ValueError, match="conflicting optimizer settings"):
            list(optimize_many(workload(1), strategy="dphyp", config=OptimizerConfig()))

    def test_workers_override_still_allowed(self):
        config = resolve_config(OptimizerConfig(workers=2), "ea-prune", 1.03, 5)
        assert config.workers == 5
