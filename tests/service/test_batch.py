"""Batch driver: ordering, dedup, cache reuse, and parallel equivalence."""

import random

import pytest

from repro.optimizer import optimize
from repro.service import PlanCache, optimize_many, run_batch
from repro.workload import generate_query, generate_workload


def workload(count, unique=None, n=4, seed=7):
    return generate_workload(count, n, random.Random(seed), unique=unique)


class TestSerialDriver:
    def test_results_in_submission_order_with_matching_costs(self):
        queries = workload(6)
        items = list(optimize_many(queries, workers=1))
        assert [item.index for item in items] == list(range(6))
        for item, query in zip(items, queries):
            assert item.cost == optimize(query).cost
            assert item.result.strategy == "ea-prune"

    def test_within_batch_dedup_without_cache(self):
        queries = workload(9, unique=3)
        items = list(optimize_many(queries, workers=1, cache=None))
        assert sum(1 for item in items if not item.cache_hit) == 3
        assert sum(1 for item in items if item.cache_hit) == 6
        # Duplicates share the identical plan.
        by_key = {}
        for item in items:
            by_key.setdefault(item.key, set()).add(item.cost)
        assert all(len(costs) == 1 for costs in by_key.values())

    def test_strategy_parameter_respected(self):
        queries = workload(3)
        items = list(optimize_many(queries, strategy="dphyp", workers=1))
        assert all(item.result.strategy == "dphyp" for item in items)


class TestCacheReuse:
    def test_second_batch_is_all_hits(self):
        queries = workload(8, unique=4)
        cache = PlanCache(capacity=64)
        first = run_batch(queries, workers=1, cache=cache)
        second = run_batch(queries, workers=1, cache=cache)
        assert first.hits == 4 and first.total == 8
        assert second.hit_rate == 1.0
        assert second.optimize_seconds == 0.0
        assert cache.stats.puts == 4

    def test_hits_marked_and_timed(self):
        queries = workload(4, unique=2)
        cache = PlanCache(capacity=64)
        list(optimize_many(queries, workers=1, cache=cache))
        items = list(optimize_many(queries, workers=1, cache=cache))
        assert all(item.cache_hit for item in items)
        assert all(item.result.cache_hit for item in items)

    def test_cache_hit_results_report_zero_elapsed(self):
        queries = workload(2, unique=1)
        cache = PlanCache(capacity=64)
        fresh = optimize(queries[0], cache=cache)
        served = optimize(queries[1], cache=cache)
        assert fresh.elapsed_seconds > 0
        assert served.cache_hit
        assert served.elapsed_seconds == 0.0  # a lookup, not a re-run
        # The work counters still describe the run that built the plan.
        assert served.ccp_count == fresh.ccp_count
        assert served.plans_built == fresh.plans_built

    def test_invalidation_forces_recomputation(self):
        queries = workload(3, unique=1)
        cache = PlanCache(capacity=64)
        run_batch(queries, workers=1, cache=cache)
        relation = queries[0].relations[0].name
        assert cache.invalidate(relation) == 1
        report = run_batch(queries, workers=1, cache=cache)
        assert report.hits == 2  # one fresh run, two within-batch reuses

    def test_cache_shared_across_strategies_without_collision(self):
        queries = workload(2, unique=1)
        cache = PlanCache(capacity=64)
        run_batch(queries, strategy="ea-prune", workers=1, cache=cache)
        report = run_batch(queries, strategy="dphyp", workers=1, cache=cache)
        assert report.hits == 1  # dphyp must re-optimize, not reuse ea-prune
        assert cache.stats.puts == 2


class TestParallelDriver:
    def test_parallel_matches_serial_costs(self):
        queries = workload(6, n=4, seed=11)
        serial = [item.cost for item in optimize_many(queries, workers=1)]
        parallel = [item.cost for item in optimize_many(queries, workers=2)]
        assert parallel == serial

    def test_parallel_with_cache_and_duplicates(self):
        queries = workload(10, unique=4, seed=13)
        cache = PlanCache(capacity=64)
        report = run_batch(queries, workers=2, cache=cache)
        assert report.total == 10
        assert report.total - report.hits == 4
        for item, query in zip(report.items, queries):
            assert item.cost == optimize(query).cost

    def test_streaming_preserves_order(self):
        queries = workload(5, seed=17)
        indices = [item.index for item in optimize_many(queries, workers=2)]
        assert indices == [0, 1, 2, 3, 4]


class TestReport:
    def test_report_metrics(self):
        queries = workload(6, unique=2, seed=19)
        report = run_batch(queries, workers=1, cache=PlanCache(capacity=8))
        assert report.total == 6
        assert report.hits == 4
        assert report.hit_rate == pytest.approx(4 / 6)
        assert report.wall_seconds > 0
        assert report.queries_per_second > 0
        assert report.optimize_seconds > 0
        assert report.cache_stats is not None
        assert report.cache_stats.puts == 2

    def test_single_query_batch(self):
        query = generate_query(3, random.Random(23))
        report = run_batch([query], workers=1)
        assert report.total == 1
        assert report.hits == 0
        assert report.items[0].cost == optimize(query).cost
