"""PlanCache behaviour: hits, LRU eviction, invalidation, catalog hook."""

import pytest

from repro.service import PlanCache
from repro.service.fingerprint import PlanCacheKey
from repro.sql.catalog import Catalog, TableStats


def key(tag: str, snapshot: str = "snap") -> PlanCacheKey:
    return PlanCacheKey(fingerprint=tag, snapshot=snapshot, strategy="ea-prune")


class Plan:
    """Stand-in for an OptimizationResult (the cache never inspects it)."""

    def __init__(self, tag):
        self.tag = tag


class TestHitsAndMisses:
    def test_miss_then_hit(self):
        cache = PlanCache(capacity=4)
        k = key("q1")
        assert cache.get(k) is None
        cache.put(k, Plan("p1"), relations=["orders"])
        assert cache.get(k).tag == "p1"
        assert cache.stats.hits == 1
        assert cache.stats.misses == 1
        assert cache.stats.hit_rate == 0.5

    def test_snapshot_is_part_of_the_key(self):
        cache = PlanCache(capacity=4)
        cache.put(key("q1", "old-stats"), Plan("stale"))
        assert cache.get(key("q1", "new-stats")) is None

    def test_stats_idle(self):
        assert PlanCache().stats.hit_rate == 0.0

    def test_capacity_validation(self):
        with pytest.raises(ValueError):
            PlanCache(capacity=0)


class TestEviction:
    def test_lru_evicts_oldest(self):
        cache = PlanCache(capacity=2)
        cache.put(key("a"), Plan("a"))
        cache.put(key("b"), Plan("b"))
        cache.put(key("c"), Plan("c"))
        assert cache.get(key("a")) is None
        assert cache.get(key("b")) is not None
        assert cache.get(key("c")) is not None
        assert cache.stats.evictions == 1
        assert len(cache) == 2

    def test_get_refreshes_recency(self):
        cache = PlanCache(capacity=2)
        cache.put(key("a"), Plan("a"))
        cache.put(key("b"), Plan("b"))
        cache.get(key("a"))  # a becomes most recent
        cache.put(key("c"), Plan("c"))
        assert cache.get(key("a")) is not None
        assert cache.get(key("b")) is None

    def test_put_overwrites_in_place(self):
        cache = PlanCache(capacity=2)
        cache.put(key("a"), Plan("v1"))
        cache.put(key("a"), Plan("v2"))
        assert len(cache) == 1
        assert cache.get(key("a")).tag == "v2"
        assert cache.stats.evictions == 0


class TestInvalidation:
    def make_cache(self):
        cache = PlanCache(capacity=8)
        cache.put(key("q1"), Plan("p1"), relations=["orders", "lineitem"])
        cache.put(key("q2"), Plan("p2"), relations=["customer"])
        cache.put(key("q3"), Plan("p3"), relations=["ORDERS"])
        return cache

    def test_invalidate_by_relation(self):
        cache = self.make_cache()
        assert cache.invalidate("orders") == 2  # q1 and q3, case-insensitive
        assert cache.get(key("q1")) is None
        assert cache.get(key("q2")) is not None
        assert cache.stats.invalidations == 2

    def test_invalidate_everything(self):
        cache = self.make_cache()
        assert cache.invalidate() == 3
        assert len(cache) == 0

    def test_invalidate_unknown_relation_is_noop(self):
        cache = self.make_cache()
        assert cache.invalidate("nation") == 0
        assert len(cache) == 3

    def test_relations_recorded(self):
        cache = self.make_cache()
        assert cache.relations_of(key("q1")) == frozenset({"orders", "lineitem"})
        assert cache.relations_of(key("missing")) == frozenset()


class TestCatalogHook:
    def stats(self, name: str, rows: float) -> TableStats:
        return TableStats(name=name, columns=("a", "b"), cardinality=rows)

    def test_catalog_change_evicts_watching_cache(self):
        catalog = Catalog()
        catalog.register(self.stats("orders", 100.0))

        cache = PlanCache(capacity=8)
        cache.watch(catalog)
        cache.put(key("q1"), Plan("p1"), relations=["orders"])
        cache.put(key("q2"), Plan("p2"), relations=["customer"])

        catalog.register(self.stats("orders", 500.0))  # statistics update
        assert cache.get(key("q1")) is None
        assert cache.get(key("q2")) is not None
        assert cache.stats.invalidations == 1

    def test_unrelated_change_keeps_entries(self):
        catalog = Catalog()
        cache = PlanCache(capacity=8)
        cache.watch(catalog)
        cache.put(key("q1"), Plan("p1"), relations=["orders"])
        catalog.register(self.stats("nation", 25.0))
        assert cache.get(key("q1")) is not None

    def test_watch_returns_unsubscribe_handle(self):
        catalog = Catalog()
        cache = PlanCache(capacity=8)
        unsubscribe = cache.watch(catalog)
        cache.put(key("q1"), Plan("p1"), relations=["orders"])
        unsubscribe()
        catalog.register(self.stats("orders", 500.0))
        assert cache.get(key("q1")) is not None  # detached: no eviction
        unsubscribe()  # idempotent

    def test_double_unsubscribe_keeps_equal_subscriptions(self):
        catalog = Catalog()
        cache = PlanCache(capacity=8)
        first = cache.watch(catalog)
        cache.watch(catalog)  # a second, equal callback
        first()
        first()  # one-shot: must not detach the second subscription
        cache.put(key("q1"), Plan("p1"), relations=["orders"])
        catalog.register(self.stats("orders", 500.0))
        assert cache.get(key("q1")) is None  # still watching

    def test_raising_subscriber_does_not_break_registration(self):
        catalog = Catalog()
        seen = []

        def bad(_name):
            raise RuntimeError("boom")

        catalog.subscribe(bad)
        catalog.subscribe(seen.append)
        catalog.register(self.stats("orders", 100.0))  # must not raise
        assert catalog.lookup("orders") is not None
        assert seen == ["orders"]  # later subscribers still notified


class TestIntrospection:
    def test_describe_metrics(self):
        cache = PlanCache(capacity=4)
        cache.put(key("a"), Plan("a"))
        cache.get(key("a"))
        cache.get(key("b"))
        metrics = cache.describe()
        assert metrics["size"] == 1.0
        assert metrics["capacity"] == 4.0
        assert metrics["hits"] == 1.0
        assert metrics["misses"] == 1.0
        assert metrics["hit_rate"] == 0.5

    def test_clear(self):
        cache = PlanCache(capacity=4)
        cache.put(key("a"), Plan("a"))
        cache.clear()
        assert len(cache) == 0
        assert cache.keys() == ()
