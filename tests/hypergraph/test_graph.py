"""Tests for the hypergraph data structure and bitset helpers."""

import pytest

from repro.hypergraph.bitset import (
    bits_of,
    is_subset,
    lowest_bit,
    prefix_below,
    set_of,
    subsets,
)
from repro.hypergraph.graph import Hyperedge, Hypergraph


class TestBitset:
    def test_set_of_round_trip(self):
        assert list(bits_of(set_of([0, 2, 5]))) == [0, 2, 5]

    def test_lowest_bit(self):
        assert lowest_bit(0b10100) == 2
        assert lowest_bit(0) == -1

    def test_is_subset(self):
        assert is_subset(0b010, 0b110)
        assert not is_subset(0b001, 0b110)
        assert is_subset(0, 0b110)

    def test_subsets_enumerates_all_nonempty(self):
        found = list(subsets(0b1011))
        assert len(found) == 7
        assert set(found) == {s for s in range(1, 16) if is_subset(s, 0b1011)}

    def test_subsets_smaller_first(self):
        found = list(subsets(0b111))
        assert found[0] == 0b001
        assert found[-1] == 0b111

    def test_prefix_below(self):
        assert prefix_below(0) == 0b1
        assert prefix_below(2) == 0b111


class TestHyperedge:
    def test_simple_detection(self):
        assert Hyperedge(0b1, 0b10).simple
        assert not Hyperedge(0b11, 0b100).simple

    def test_empty_side_rejected(self):
        with pytest.raises(ValueError):
            Hyperedge(0, 0b1)

    def test_overlap_rejected(self):
        with pytest.raises(ValueError):
            Hyperedge(0b11, 0b110)


class TestHypergraph:
    def chain(self, n):
        return Hypergraph.from_pairs(n, [(i, i + 1) for i in range(n - 1)])

    def test_out_of_range_edge_rejected(self):
        with pytest.raises(ValueError):
            Hypergraph(2, [Hyperedge(0b1, 0b100)])

    def test_neighborhood_simple_chain(self):
        graph = self.chain(4)
        assert graph.neighborhood(0b0001, 0) == 0b0010
        assert graph.neighborhood(0b0010, 0) == 0b0101
        assert graph.neighborhood(0b0010, 0b0001) == 0b0100

    def test_neighborhood_complex_edge_uses_min_representative(self):
        # Hyperedge {0} -- {1,2}: only min({1,2}) = 1 represents the far side.
        graph = Hypergraph(3, [Hyperedge(0b001, 0b110)])
        assert graph.neighborhood(0b001, 0) == 0b010

    def test_neighborhood_complex_edge_blocked_by_excluded(self):
        graph = Hypergraph(3, [Hyperedge(0b001, 0b110)])
        assert graph.neighborhood(0b001, 0b010) == 0

    def test_connected(self):
        graph = self.chain(3)
        assert graph.connected(0b001, 0b010)
        assert not graph.connected(0b001, 0b100)

    def test_connecting_edges_returns_all(self):
        graph = self.chain(3)
        edges = graph.connecting_edges(0b101, 0b010)
        assert len(edges) == 2

    def test_induces_connected_subgraph(self):
        graph = self.chain(4)
        assert graph.induces_connected_subgraph(0b0011)
        assert graph.induces_connected_subgraph(0b0111)
        assert not graph.induces_connected_subgraph(0b0101)

    def test_complex_edge_connectivity_requires_full_side(self):
        # {0} -- {1,2}: {0,1} alone is NOT connected (edge needs both 1 and 2),
        # and with only the hyperedge, even {0,1,2} is unbuildable because the
        # inner pair {1,2} has no edge of its own.
        graph = Hypergraph(3, [Hyperedge(0b001, 0b110)])
        assert not graph.induces_connected_subgraph(0b011)
        assert not graph.induces_connected_subgraph(0b111)
        with_inner = Hypergraph(3, [Hyperedge(0b001, 0b110), Hyperedge(0b010, 0b100)])
        assert with_inner.induces_connected_subgraph(0b110)
        assert with_inner.induces_connected_subgraph(0b111)


class TestIndexedAccessors:
    """The indexed/memoised ``connected``/``neighborhood`` are pinned to
    the linear-scan reference implementations on random hypergraphs."""

    def _random_graph(self, seed):
        import random

        rng = random.Random(seed)
        n = rng.randint(2, 7)
        edges = []
        for _ in range(rng.randint(1, n + 3)):
            left = rng.randint(1, (1 << n) - 1)
            right = rng.randint(1, (1 << n) - 1) & ~left
            if right:
                edges.append(Hyperedge(left, right, label=len(edges)))
        if not edges:
            edges.append(Hyperedge(1, 2, label=0))
        return Hypergraph(n, edges)

    def test_connected_matches_scan(self):
        import random

        for seed in range(40):
            graph = self._random_graph(seed)
            rng = random.Random(seed * 31)
            for _ in range(50):
                s1 = rng.randint(1, graph.all_vertices)
                s2 = rng.randint(1, graph.all_vertices) & ~s1
                if not s2:
                    continue
                assert graph.connected(s1, s2) == graph.connected_scan(s1, s2)

    def test_neighborhood_matches_scan(self):
        import random

        for seed in range(40):
            graph = self._random_graph(seed + 1000)
            rng = random.Random(seed * 37)
            for _ in range(50):
                s = rng.randint(1, graph.all_vertices)
                excluded = rng.randint(0, graph.all_vertices) & ~s
                assert graph.neighborhood(s, excluded) == graph.neighborhood_scan(
                    s, excluded
                )

    def test_connecting_edges_preserves_edge_order(self):
        graph = Hypergraph(
            3,
            [
                Hyperedge(0b001, 0b010, label="a"),
                Hyperedge(0b100, 0b010, label="b"),
                Hyperedge(0b001, 0b100, label="c"),
            ],
        )
        labels = [edge.label for edge in graph.connecting_edges(0b101, 0b010)]
        assert labels == ["a", "b"]

    def test_memo_counters_and_reset(self):
        graph = Hypergraph.from_pairs(4, [(0, 1), (1, 2), (2, 3)])
        assert graph.connected(0b0011, 0b0100)
        assert graph.connected(0b0011, 0b0100)  # second call served from memo
        assert graph.counters["connected_calls"] == 2
        assert graph.counters["connected_memo_hits"] == 1
        graph.neighborhood(0b0001, 0)
        graph.neighborhood(0b0001, 0)
        assert graph.counters["neighborhood_memo_hits"] == 1
        graph.reset_caches()
        assert all(value == 0 for value in graph.counters.values())
        assert graph.connected(0b0011, 0b0100)
        assert graph.counters["connected_memo_hits"] == 0

    def test_connected_is_symmetric_under_memo(self):
        graph = Hypergraph(3, [Hyperedge(0b001, 0b110)])
        assert graph.connected(0b001, 0b110) == graph.connected(0b110, 0b001)
