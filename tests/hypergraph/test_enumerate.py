"""DPhyp enumeration tests: closed-form counts + brute-force cross-checks."""

import itertools
import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.hypergraph.enumerate import brute_force_ccps, count_ccps, enumerate_ccps
from repro.hypergraph.graph import Hyperedge, Hypergraph


def chain(n):
    return Hypergraph.from_pairs(n, [(i, i + 1) for i in range(n - 1)])


def cycle(n):
    return Hypergraph.from_pairs(n, [(i, (i + 1) % n) for i in range(n)])


def star(n):
    return Hypergraph.from_pairs(n, [(0, i) for i in range(1, n)])


def clique(n):
    return Hypergraph.from_pairs(n, list(itertools.combinations(range(n), 2)))


class TestClosedFormCounts:
    """#ccp formulas from Moerkotte & Neumann (2006), Table 1."""

    @pytest.mark.parametrize("n", range(2, 9))
    def test_chain(self, n):
        assert count_ccps(chain(n)) == (n**3 - n) // 6

    @pytest.mark.parametrize("n", range(3, 9))
    def test_star(self, n):
        assert count_ccps(star(n)) == (n - 1) * 2 ** (n - 2)

    @pytest.mark.parametrize("n", range(2, 8))
    def test_clique(self, n):
        assert count_ccps(clique(n)) == (3**n - 2 ** (n + 1) + 1) // 2

    @pytest.mark.parametrize("n", range(3, 8))
    def test_cycle_matches_brute_force(self, n):
        assert count_ccps(cycle(n)) == len(brute_force_ccps(cycle(n)))


class TestEnumerationProperties:
    def test_single_vertex_yields_nothing(self):
        assert count_ccps(Hypergraph(1)) == 0

    def test_two_vertices(self):
        assert list(enumerate_ccps(chain(2))) == [(0b01, 0b10)]

    def test_pairs_unique(self):
        pairs = list(enumerate_ccps(clique(5)))
        normalised = {frozenset((s1, s2)) for s1, s2 in pairs}
        assert len(normalised) == len(pairs)

    def test_pairs_are_valid_ccps(self):
        graph = cycle(5)
        for s1, s2 in enumerate_ccps(graph):
            assert s1 & s2 == 0
            assert graph.induces_connected_subgraph(s1)
            assert graph.induces_connected_subgraph(s2)
            assert graph.connected(s1, s2)

    def test_dp_order(self):
        """Each component appears only after all its proper connected subsets
        have appeared as components — the property DP relies on."""
        graph = chain(6)
        seen = {1 << i for i in range(6)}
        for s1, s2 in enumerate_ccps(graph):
            assert s1 in seen or s1.bit_count() == 1
            assert s2 in seen or s2.bit_count() == 1
            seen.add(s1 | s2)

    @settings(max_examples=40, deadline=None)
    @given(
        n=st.integers(min_value=2, max_value=6),
        seed=st.integers(min_value=0, max_value=10_000),
    )
    def test_random_connected_simple_graphs_match_brute_force(self, n, seed):
        rng = random.Random(seed)
        # Random spanning tree + random extra edges => connected graph.
        pairs = [(rng.randrange(i), i) for i in range(1, n)]
        extras = [
            (u, w)
            for u, w in itertools.combinations(range(n), 2)
            if (u, w) not in pairs and rng.random() < 0.3
        ]
        graph = Hypergraph.from_pairs(n, pairs + extras)
        emitted = {frozenset((s1, s2)) for s1, s2 in enumerate_ccps(graph)}
        expected = {frozenset(p) for p in brute_force_ccps(graph)}
        assert emitted == expected

    @settings(max_examples=30, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=10_000))
    def test_random_hypergraphs_match_brute_force(self, seed):
        rng = random.Random(seed)
        n = rng.randint(3, 6)
        edges = [Hyperedge(1 << (i - 1), 1 << i, label=i) for i in range(1, n)]
        # Add a couple of complex hyperedges over random disjoint sets.
        for _ in range(2):
            left = frozenset(rng.sample(range(n), rng.randint(1, 2)))
            remaining = [v for v in range(n) if v not in left]
            if not remaining:
                continue
            right = frozenset(rng.sample(remaining, rng.randint(1, min(2, len(remaining)))))
            edges.append(
                Hyperedge(sum(1 << v for v in left), sum(1 << v for v in right))
            )
        graph = Hypergraph(n, edges)
        emitted = {frozenset((s1, s2)) for s1, s2 in enumerate_ccps(graph)}
        expected = {frozenset(p) for p in brute_force_ccps(graph)}
        assert emitted == expected


class TestIterativeMatchesReference:
    """The iterative hot-path enumerator is pinned, pair for pair *in
    order*, to the seed's recursive transcription."""

    @pytest.mark.parametrize("make", [chain, cycle, star, clique])
    @pytest.mark.parametrize("n", [2, 3, 5, 7])
    def test_topologies_emit_identical_sequences(self, make, n):
        if make is cycle and n == 2:
            pytest.skip("cycle needs n >= 3")
        from repro.hypergraph.enumerate import enumerate_ccps_reference

        assert list(enumerate_ccps(make(n))) == list(enumerate_ccps_reference(make(n)))

    @settings(max_examples=40, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=10_000))
    def test_random_hypergraphs_emit_identical_sequences(self, seed):
        from repro.hypergraph.enumerate import enumerate_ccps_reference

        rng = random.Random(seed)
        n = rng.randint(2, 7)
        edges = []
        for _ in range(rng.randint(1, n + 2)):
            left = rng.randint(1, (1 << n) - 1)
            right = rng.randint(1, (1 << n) - 1) & ~left
            if not right:
                continue
            edges.append(Hyperedge(left, right, label=len(edges)))
        if not edges:
            edges.append(Hyperedge(1, 2, label=0))
        iterative = list(enumerate_ccps(Hypergraph(n, edges)))
        recursive = list(enumerate_ccps_reference(Hypergraph(n, edges)))
        assert iterative == recursive


class TestLargeChains:
    """The hot path is iterative: no recursion-limit failures on deep
    chains (the seed's recursive enumerator could not get here)."""

    def test_chain_20_smoke(self):
        n = 20
        assert count_ccps(chain(n)) == (n**3 - n) // 6

    def test_chain_60_exceeds_default_recursion_headroom(self):
        # Sanity-check the premise at a size that stays fast (~100k ccps):
        # 60 nested generator frames per emitted pair would already strain
        # the seed implementation; the iterative enumerator is indifferent.
        n = 60
        assert count_ccps(chain(n)) == (n**3 - n) // 6

    def test_reference_enumerator_rejects_oversized_graphs(self):
        from repro.hypergraph.enumerate import enumerate_ccps_reference

        with pytest.raises(RecursionError, match="iterative"):
            list(enumerate_ccps_reference(chain(500)))
