"""Shared pytest configuration.

Registers the ``slow`` marker used by the exhaustive cross-engine
differential matrices (``tests/optimizer/test_engine_differential.py``).
Slow tests are skipped by default so the tier-1 suite stays fast; run
them with ``--runslow`` or an explicit ``-m slow`` selection.
"""

import pytest


def pytest_addoption(parser):
    parser.addoption(
        "--runslow",
        action="store_true",
        default=False,
        help="run tests marked slow (exhaustive differential matrices)",
    )


def pytest_configure(config):
    config.addinivalue_line(
        "markers",
        "slow: exhaustive matrix, excluded from tier-1 (enable with --runslow or -m slow)",
    )


def pytest_collection_modifyitems(config, items):
    if config.getoption("--runslow"):
        return
    markexpr = config.getoption("-m", default="") or ""
    if "slow" in markexpr:
        return  # the caller selected by marker explicitly
    skip_slow = pytest.mark.skip(reason="slow matrix: pass --runslow or -m slow")
    for item in items:
        if "slow" in item.keywords:
            item.add_marker(skip_slow)
