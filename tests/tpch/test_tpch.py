"""Tests for the TPC-H substrate: schema, stats, datagen, queries."""

import pytest

from repro.exec import execute
from repro.optimizer import optimize
from repro.query.canonical import canonical_plan
from repro.tpch import (
    TABLES,
    TPCH_QUERIES,
    build_ex,
    build_q3,
    build_q5,
    build_q10,
    micro_database,
    scaled_cardinality,
    scaled_distinct,
)
from repro.tpch.datagen import MICRO_ROWS, micro_table


class TestSchema:
    def test_all_eight_tables(self):
        assert set(TABLES) == {
            "region", "nation", "supplier", "customer",
            "part", "partsupp", "orders", "lineitem",
        }

    def test_sf1_cardinalities(self):
        assert scaled_cardinality("lineitem") == 6_001_215
        assert scaled_cardinality("orders") == 1_500_000
        assert scaled_cardinality("nation") == 25

    def test_fixed_tables_do_not_scale(self):
        assert scaled_cardinality("nation", 10.0) == 25
        assert scaled_cardinality("region", 10.0) == 5
        assert scaled_cardinality("supplier", 10.0) == 100_000

    def test_distinct_scaling(self):
        assert scaled_distinct("customer", "c_custkey", 2.0) == 300_000
        assert scaled_distinct("customer", "c_nationkey", 2.0) == 25
        assert scaled_distinct("orders", "o_shippriority") == 1


class TestDatagen:
    @pytest.mark.parametrize("table", sorted(TABLES))
    def test_micro_tables_generate(self, table):
        rel = micro_table(table)
        assert len(rel) == MICRO_ROWS[table]
        expected = {f"{table}.{c}" for c in TABLES[table].columns}
        assert set(rel.attributes) == expected

    @pytest.mark.parametrize("table", sorted(TABLES))
    def test_primary_keys_hold(self, table):
        rel = micro_table(table)
        key = tuple(f"{table}.{c}" for c in TABLES[table].primary_key)
        values = [row.values_for(key) for row in rel]
        assert len(values) == len(set(values))

    def test_aliased_generation(self):
        rel = micro_table("nation", alias="ns")
        assert all(a.startswith("ns.") for a in rel.attributes)

    def test_determinism(self):
        assert micro_table("orders", seed=3) == micro_table("orders", seed=3)


class TestQueryDefinitions:
    def test_ex_structure(self):
        query = build_ex()
        assert len(query.relations) == 4
        from repro.rewrites.pushdown import OpKind

        assert query.edges[2].op is OpKind.FULL_OUTER
        assert query.group_by == ("ns.n_name", "nc.n_name")

    def test_q3_structure(self):
        query = build_q3()
        assert len(query.relations) == 3
        assert len(query.local_predicates) == 3

    def test_q5_is_cyclic(self):
        query = build_q5()
        assert query.floating_edge_ids == (5,)

    def test_q10_grouping(self):
        query = build_q10()
        assert "customer.c_custkey" in query.group_by

    def test_scale_factor_propagates(self):
        small = build_q3(0.01)
        big = build_q3(1.0)
        assert small.relations[2].cardinality < big.relations[2].cardinality


class TestEndToEnd:
    @pytest.mark.parametrize("name", sorted(TPCH_QUERIES))
    @pytest.mark.parametrize("strategy", ["dphyp", "ea-prune", "h1", "h2"])
    def test_optimized_results_match_canonical(self, name, strategy):
        query = TPCH_QUERIES[name](1.0)
        database = micro_database(query, seed=1)
        canonical = execute(canonical_plan(query), database)
        result = optimize(query, strategy)
        assert execute(result.plan.node, database) == canonical

    def test_ex_gains_massively_from_eager_aggregation(self):
        """The headline claim: the outerjoin barrier falls (Sec. 1)."""
        query = build_ex()
        lazy = optimize(query, "dphyp")
        eager = optimize(query, "ea-prune")
        assert eager.cost < lazy.cost * 1e-3

    def test_heuristics_find_an_ex_plan_close_to_optimal(self):
        # The heuristics keep one plan per class and are not guaranteed
        # optimal (Sec. 4.4), but on Ex they must capture nearly all of the
        # gain: within a small factor of EA, orders of magnitude below DPhyp.
        query = build_ex()
        optimal = optimize(query, "ea-prune")
        lazy = optimize(query, "dphyp")
        for strategy in ("h1", "h2"):
            cost = optimize(query, strategy).cost
            assert cost <= optimal.cost * 2
            assert cost < lazy.cost * 1e-3

    def test_q10_gains(self):
        query = build_q10()
        lazy = optimize(query, "dphyp")
        eager = optimize(query, "ea-prune")
        assert eager.cost < lazy.cost

    def test_eager_never_worse(self):
        for name, build in TPCH_QUERIES.items():
            query = build(1.0)
            lazy = optimize(query, "dphyp")
            eager = optimize(query, "ea-prune")
            assert eager.cost <= lazy.cost * (1 + 1e-9), name
