"""Tests for the random workload generator and micro-data instantiation."""

import random

import pytest

from repro.query.tree import tree_leaves, tree_operators
from repro.rewrites.pushdown import OpKind
from repro.workload import WorkloadConfig, generate_database, generate_query


class TestGenerateQuery:
    @pytest.mark.parametrize("n", [1, 2, 3, 5, 8])
    def test_structure(self, n):
        rng = random.Random(123 + n)
        query = generate_query(n, rng)
        assert len(query.relations) == n
        assert len(query.edges) == n - 1
        if n > 1:
            assert tree_leaves(query.tree) == (1 << n) - 1

    def test_determinism(self):
        q1 = generate_query(5, random.Random(9))
        q2 = generate_query(5, random.Random(9))
        assert repr(q1) == repr(q2)
        assert [repr(e.predicate) for e in q1.edges] == [repr(e.predicate) for e in q2.edges]

    def test_group_attrs_are_visible(self):
        """Grouping attributes must survive semijoins/antijoins/groupjoins."""
        for seed in range(30):
            rng = random.Random(seed)
            query = generate_query(rng.randint(2, 6), rng)
            hidden = 0
            for node in tree_operators(query.tree):
                edge = query.edge(node.edge_id)
                if edge.op in (OpKind.LEFT_SEMI, OpKind.LEFT_ANTI, OpKind.GROUPJOIN):
                    hidden |= tree_leaves(node.right)
            for attr in query.group_by:
                vertex = query.vertex_of(attr)
                assert not hidden & (1 << vertex), f"seed {seed}: {attr} hidden"

    def test_inner_only_config(self):
        config = WorkloadConfig(inner_only=True)
        for seed in range(10):
            query = generate_query(5, random.Random(seed), config)
            assert all(edge.op is OpKind.INNER for edge in query.edges)

    def test_every_relation_has_declared_key(self):
        query = generate_query(4, random.Random(3))
        for rel in query.relations:
            assert rel.all_keys()

    def test_aggregates_reference_known_attributes(self):
        for seed in range(20):
            rng = random.Random(seed)
            query = generate_query(rng.randint(2, 6), rng)
            for item in query.aggregates:
                for attr in item.call.attributes():
                    query.vertices_of([attr])  # raises KeyError if unknown


class TestGenerateDatabase:
    def test_schema_and_sizes(self):
        rng = random.Random(5)
        query = generate_query(4, rng)
        db = generate_database(query, rng)
        assert set(db.keys()) == {rel.name for rel in query.relations}
        for rel in query.relations:
            data = db[rel.name]
            assert set(data.attributes) == set(rel.attributes)
            assert 2 <= len(data) <= 5

    def test_declared_keys_hold_in_data(self):
        """The optimizer trusts key declarations; the data must honour them."""
        for seed in range(20):
            rng = random.Random(seed)
            query = generate_query(rng.randint(1, 5), rng)
            db = generate_database(query, rng)
            for rel in query.relations:
                data = db[rel.name]
                for key in rel.all_keys():
                    values = [row.values_for(sorted(key)) for row in data]
                    assert len(values) == len(set(values)), f"key {key} violated"


class TestSqlWorkloadMode:
    """The mixed-operator SQL mode: parser round-trip + binder properties."""

    @pytest.fixture(scope="class")
    def tpch(self):
        from repro.sql import Catalog

        return Catalog.from_tpch()

    def test_deterministic_per_seed(self):
        from repro.workload import generate_sql_workload

        first = generate_sql_workload(20, random.Random(11))
        second = generate_sql_workload(20, random.Random(11))
        assert first == second

    def test_unique_shapes_cycle(self):
        from repro.workload import generate_sql_workload

        batch = generate_sql_workload(30, random.Random(3), unique=5)
        assert len(batch) == 30
        assert len(set(batch)) <= 5

    def test_every_statement_parses_and_binds(self, tpch):
        """Property: 200 random statements all round-trip parser + binder."""
        from repro.sql import parse_query
        from repro.workload import generate_sql_query

        rng = random.Random(1234)
        for _ in range(200):
            sql = generate_sql_query(rng)
            query = parse_query(sql, tpch)  # must not raise
            assert query.relations and query.aggregates.names()

    def test_operator_coverage(self, tpch):
        """A modest batch must exercise the full operator surface."""
        from repro.rewrites.pushdown import OpKind
        from repro.sql import parse_query
        from repro.workload import generate_sql_workload

        rng = random.Random(99)
        seen = set()
        for sql in generate_sql_workload(120, rng):
            for edge in parse_query(sql, tpch).edges:
                seen.add(edge.op)
        assert {
            OpKind.INNER,
            OpKind.LEFT_OUTER,
            OpKind.FULL_OUTER,
            OpKind.LEFT_SEMI,
            OpKind.LEFT_ANTI,
        } <= seen

    def test_syntax_coverage(self):
        """The emitted text uses the new SQL forms, not just the old ones."""
        from repro.workload import generate_sql_workload

        text = " ".join(generate_sql_workload(120, random.Random(5)))
        for construct in ("NOT EXISTS (", "EXISTS (", " IN (SELECT", "RIGHT JOIN",
                          "IS NULL", "IS NOT NULL", "NOT "):
            assert construct in text, construct

    def test_optimized_matches_canonical_execution(self, tpch):
        """End-to-end property: optimizer output equals canonical semantics
        on micro databases, for a sample of generated statements."""
        from repro.exec import execute
        from repro.optimizer import optimize
        from repro.query.canonical import canonical_plan
        from repro.sql import parse_query
        from repro.tpch import micro_database
        from repro.workload import generate_sql_query

        rng = random.Random(4242)
        for _ in range(25):
            sql = generate_sql_query(rng)
            query = parse_query(sql, tpch)
            database = micro_database(query)
            canonical = execute(canonical_plan(query), database)
            result = optimize(query, "ea-prune")
            assert execute(result.plan.node, database) == canonical, sql
