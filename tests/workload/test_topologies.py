"""The fixed-topology workloads must actually have their advertised shape:
the conflict detector's hypergraph should enumerate exactly the closed-form
csg-cmp-pair counts of Moerkotte & Neumann (2006), Table 1."""

import pytest

from repro.hypergraph.enumerate import count_ccps
from repro.optimizer.driver import prepare
from repro.workload import (
    chain_query,
    clique_query,
    cycle_query,
    star_query,
    topology_query,
)


class TestTopologyShapes:
    @pytest.mark.parametrize("n", [2, 4, 6, 8])
    def test_chain_ccp_count(self, n):
        graph = prepare(chain_query(n)).graph
        assert count_ccps(graph) == (n**3 - n) // 6

    @pytest.mark.parametrize("n", [3, 5, 7])
    def test_star_ccp_count(self, n):
        graph = prepare(star_query(n)).graph
        assert count_ccps(graph) == (n - 1) * 2 ** (n - 2)

    @pytest.mark.parametrize("n", [3, 5, 7])
    def test_clique_ccp_count(self, n):
        graph = prepare(clique_query(n)).graph
        assert count_ccps(graph) == (3**n - 2 ** (n + 1) + 1) // 2

    @pytest.mark.parametrize("n", [3, 5, 7])
    def test_cycle_edge_count(self, n):
        query = cycle_query(n)
        assert len(query.edges) == n
        assert len(query.floating_edge_ids) == 1
        graph = prepare(query).graph
        assert len(graph.edges) == n

    def test_clique_floating_edges(self):
        query = clique_query(5)
        assert len(query.edges) == 10  # C(5, 2)
        assert len(query.floating_edge_ids) == 10 - 4  # all but the spine


class TestTopologyQueries:
    @pytest.mark.parametrize("topology", ["chain", "cycle", "star", "clique"])
    def test_optimizable_end_to_end(self, topology):
        from repro.optimizer import optimize

        result = optimize(topology_query(topology, 5), "ea-prune")
        assert result.cost > 0
        assert result.table_sizes

    def test_unknown_topology_rejected(self):
        with pytest.raises(ValueError, match="unknown topology"):
            topology_query("lattice", 5)

    @pytest.mark.parametrize(
        "builder,minimum",
        [(chain_query, 2), (cycle_query, 3), (star_query, 2), (clique_query, 3)],
    )
    def test_size_floors(self, builder, minimum):
        with pytest.raises(ValueError):
            builder(minimum - 1)

    def test_deterministic_construction(self):
        a, b = star_query(6), star_query(6)
        assert [r.cardinality for r in a.relations] == [
            r.cardinality for r in b.relations
        ]
        assert [e.selectivity for e in a.edges] == [e.selectivity for e in b.edges]
