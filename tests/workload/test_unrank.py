"""Tests for binary-tree unranking (Liebehenschel-style generation)."""

import random
from collections import Counter

import pytest

from repro.workload.unrank import (
    count_trees,
    leaf_count,
    random_tree_shape,
    rank_tree,
    unrank_tree,
)


CATALAN = [1, 1, 2, 5, 14, 42, 132, 429, 1430]


class TestCounting:
    @pytest.mark.parametrize("leaves,expected", list(enumerate(CATALAN, start=1)))
    def test_catalan_numbers(self, leaves, expected):
        assert count_trees(leaves) == expected

    def test_zero_leaves_rejected(self):
        with pytest.raises(ValueError):
            count_trees(0)


class TestUnranking:
    def test_single_leaf(self):
        assert unrank_tree(1, 0) is None

    def test_two_leaves(self):
        assert unrank_tree(2, 0) == (None, None)

    @pytest.mark.parametrize("leaves", range(1, 8))
    def test_bijectivity(self, leaves):
        """rank(unrank(r)) == r for every rank — unranking is a bijection."""
        seen = set()
        for rank in range(count_trees(leaves)):
            shape = unrank_tree(leaves, rank)
            assert leaf_count(shape) == leaves
            assert rank_tree(shape) == rank
            seen.add(repr(shape))
        assert len(seen) == count_trees(leaves)

    def test_out_of_range_rank_rejected(self):
        with pytest.raises(ValueError):
            unrank_tree(3, 2)
        with pytest.raises(ValueError):
            unrank_tree(3, -1)

    def test_random_shape_uniformity(self):
        """χ²-style sanity check: all 5 shapes with 4 leaves appear with
        roughly equal frequency."""
        rng = random.Random(7)
        counts = Counter(repr(random_tree_shape(4, rng)) for _ in range(5000))
        assert len(counts) == 5
        for value in counts.values():
            assert 800 < value < 1200
