"""Operator semantics tests, replicating the paper's Fig. 2 examples exactly."""

import pytest

from repro.aggregates import count, count_star, max_, min_, sum_
from repro.aggregates.vector import AggItem, AggVector
from repro.algebra import operators as ops
from repro.algebra.expressions import Attr, BinOp, Const
from repro.algebra.relation import Relation
from repro.algebra.values import NULL, is_null


@pytest.fixture
def e1():
    """Relation e1 from Fig. 2."""
    return Relation.from_tuples(["a", "b", "c"], [(0, 0, 1), (1, 0, 1), (2, 1, 3), (3, 2, 3)])


@pytest.fixture
def e2():
    """Relation e2 from Fig. 2."""
    return Relation.from_tuples(["d", "e", "f"], [(0, 0, 1), (1, 1, 1), (2, 2, 1), (3, 4, 2)])


class TestFig2JoinFamily:
    def test_inner_join(self, e1, e2):
        result = ops.join(e1, e2, Attr("b").eq(Attr("d")))
        expected = Relation.from_tuples(
            ["a", "b", "c", "d", "e", "f"],
            [
                (0, 0, 1, 0, 0, 1),
                (1, 0, 1, 0, 0, 1),
                (2, 1, 3, 1, 1, 1),
                (3, 2, 3, 2, 2, 1),
            ],
        )
        assert result == expected

    def test_antijoin(self, e1, e2):
        result = ops.antijoin(e1, e2, Attr("a").eq(Attr("e")))
        assert result == Relation.from_tuples(["a", "b", "c"], [(3, 2, 3)])

    def test_semijoin(self, e1, e2):
        result = ops.semijoin(e1, e2, Attr("b").eq(Attr("d")))
        assert result == Relation.from_tuples(
            ["a", "b", "c"], [(0, 0, 1), (1, 0, 1), (2, 1, 3), (3, 2, 3)]
        )

    def test_semijoin_no_duplicates_from_multiple_partners(self, e1, e2):
        # b=0 matches d=0 once only even though two e1 rows share b=0.
        result = ops.semijoin(e2, e1, Attr("d").eq(Attr("b")))
        assert result == Relation.from_tuples(
            ["d", "e", "f"], [(0, 0, 1), (1, 1, 1), (2, 2, 1)]
        )

    def test_left_outerjoin(self, e1, e2):
        result = ops.left_outerjoin(e1, e2, Attr("a").eq(Attr("e")))
        expected = Relation.from_tuples(
            ["a", "b", "c", "d", "e", "f"],
            [
                (0, 0, 1, 0, 0, 1),
                (1, 0, 1, 1, 1, 1),
                (2, 1, 3, 2, 2, 1),
                (3, 2, 3, NULL, NULL, NULL),
            ],
        )
        assert result == expected

    def test_full_outerjoin(self, e1, e2):
        result = ops.full_outerjoin(e1, e2, Attr("a").eq(Attr("e")))
        expected = Relation.from_tuples(
            ["a", "b", "c", "d", "e", "f"],
            [
                (0, 0, 1, 0, 0, 1),
                (1, 0, 1, 1, 1, 1),
                (2, 1, 3, 2, 2, 1),
                (3, 2, 3, NULL, NULL, NULL),
                (NULL, NULL, NULL, 3, 4, 2),
            ],
        )
        assert result == expected

    def test_groupjoin_matches_definition_9(self, e1, e2):
        # Fig. 2 displays only the rows with partners; Definition (9) keeps
        # every left tuple, empty partner sets aggregating to NULL.
        result = ops.groupjoin(
            e1, e2, Attr("a").eq(Attr("f")), AggVector([AggItem("g", sum_("f"))])
        )
        expected = Relation.from_tuples(
            ["a", "b", "c", "g"],
            [(0, 0, 1, NULL), (1, 0, 1, 3), (2, 1, 3, 2), (3, 2, 3, NULL)],
        )
        assert result == expected

    def test_cross_product(self, e1, e2):
        assert len(ops.cross(e1, e2)) == 16


class TestOuterjoinDefaults:
    """The generalised outerjoins of Eqvs. (7)/(8)."""

    def test_left_outerjoin_with_defaults(self, e1, e2):
        result = ops.left_outerjoin(e1, e2, Attr("a").eq(Attr("e")), defaults={"f": 99})
        padded = [row for row in result if row["a"] == 3]
        assert len(padded) == 1
        assert padded[0]["f"] == 99
        assert is_null(padded[0]["d"])

    def test_full_outerjoin_with_both_default_vectors(self, e1, e2):
        result = ops.full_outerjoin(
            e1,
            e2,
            Attr("a").eq(Attr("e")),
            left_defaults={"c": -1},
            right_defaults={"f": 42},
        )
        left_unmatched = [row for row in result if row["d"] == 3]
        assert left_unmatched[0]["c"] == -1
        assert is_null(left_unmatched[0]["a"])
        right_unmatched = [row for row in result if row["a"] == 3]
        assert right_unmatched[0]["f"] == 42

    def test_defaults_do_not_affect_matched_rows(self, e1, e2):
        with_defaults = ops.left_outerjoin(e1, e2, Attr("a").eq(Attr("e")), defaults={"f": 99})
        matched = [row for row in with_defaults if row["a"] != 3]
        plain = ops.join(e1, e2, Attr("a").eq(Attr("e")))
        assert Relation(with_defaults.attributes, matched) == plain


class TestJoinNullSemantics:
    def test_null_join_keys_never_match(self):
        left = Relation.from_tuples(["a"], [(NULL,), (1,)])
        right = Relation.from_tuples(["b"], [(NULL,), (1,)])
        result = ops.join(left, right, Attr("a").eq(Attr("b")))
        assert result == Relation.from_tuples(["a", "b"], [(1, 1)])

    def test_outerjoin_pads_null_keyed_rows(self):
        left = Relation.from_tuples(["a"], [(NULL,)])
        right = Relation.from_tuples(["b"], [(1,)])
        result = ops.left_outerjoin(left, right, Attr("a").eq(Attr("b")))
        assert len(result) == 1
        assert is_null(result.rows[0]["b"])


class TestUnaryOperators:
    def test_select(self, e1):
        result = ops.select(e1, BinOp(">", Attr("c"), Const(1)))
        assert result == Relation.from_tuples(["a", "b", "c"], [(2, 1, 3), (3, 2, 3)])

    def test_select_unknown_dropped(self):
        rel = Relation.from_tuples(["a"], [(NULL,), (1,)])
        result = ops.select(rel, Attr("a").eq(Const(1)))
        assert len(result) == 1

    def test_project_preserves_duplicates(self, e1):
        result = ops.project(e1, ["c"])
        assert sorted(row["c"] for row in result) == [1, 1, 3, 3]

    def test_project_distinct(self, e1):
        result = ops.project_distinct(e1, ["c"])
        assert sorted(row["c"] for row in result) == [1, 3]

    def test_project_distinct_null_equals_null(self):
        rel = Relation.from_tuples(["a"], [(NULL,), (NULL,), (1,)])
        assert len(ops.project_distinct(rel, ["a"])) == 2

    def test_map_extends_rows(self, e1):
        result = ops.map_(e1, [("ac", Attr("a") * Attr("c"))])
        assert result.attributes == ("a", "b", "c", "ac")
        assert {row["ac"] for row in result} == {0, 1, 6, 9}

    def test_rename(self, e1):
        result = ops.rename(e1, {"a": "x"})
        assert result.attributes == ("x", "b", "c")

    def test_rename_collision_rejected(self, e1):
        with pytest.raises(ValueError):
            ops.rename(e1, {"a": "b"})

    def test_union_all_bag_semantics(self):
        r1 = Relation.from_tuples(["a"], [(1,)])
        r2 = Relation.from_tuples(["a"], [(1,), (2,)])
        result = ops.union_all(r1, r2)
        assert sorted(row["a"] for row in result) == [1, 1, 2]

    def test_union_schema_mismatch_rejected(self):
        with pytest.raises(ValueError):
            ops.union_all(
                Relation.from_tuples(["a"], [(1,)]), Relation.from_tuples(["b"], [(1,)])
            )


class TestGroupBy:
    def test_basic_grouping(self, e1):
        result = ops.group_by(
            e1, ["b"], AggVector([AggItem("n", count_star()), AggItem("s", sum_("c"))])
        )
        expected = Relation.from_tuples(
            ["b", "n", "s"], [(0, 2, 2), (1, 1, 3), (2, 1, 3)]
        )
        assert result == expected

    def test_empty_input_yields_empty_output(self):
        rel = Relation(["a"], [])
        result = ops.group_by(rel, [], AggVector([AggItem("n", count_star())]))
        assert len(result) == 0  # the paper's Γ, not SQL scalar aggregation

    def test_empty_grouping_attrs_single_group(self, e1):
        result = ops.group_by(e1, [], AggVector([AggItem("n", count_star())]))
        assert len(result) == 1
        assert result.rows[0]["n"] == 4

    def test_null_group_keys_merge(self):
        rel = Relation.from_tuples(["g", "v"], [(NULL, 1), (NULL, 2), (0, 3)])
        result = ops.group_by(rel, ["g"], AggVector([AggItem("s", sum_("v"))]))
        assert len(result) == 2
        null_group = [row for row in result if is_null(row["g"])]
        assert null_group[0]["s"] == 3

    def test_multiple_aggregates(self, e1):
        vector = AggVector(
            [
                AggItem("n", count_star()),
                AggItem("lo", min_("a")),
                AggItem("hi", max_("a")),
                AggItem("cnt_c", count("c")),
            ]
        )
        result = ops.group_by(e1, ["c"], vector)
        by_c = {row["c"]: row for row in result}
        assert by_c[1]["n"] == 2 and by_c[1]["lo"] == 0 and by_c[1]["hi"] == 1
        assert by_c[3]["cnt_c"] == 2

    def test_theta_grouping_less_or_equal(self):
        # Γ^{≤}: each distinct anchor groups all rows with value <= anchor.
        rel = Relation.from_tuples(["g"], [(1,), (2,), (3,)])
        result = ops.group_by(rel, ["g"], AggVector([AggItem("n", count_star())]), theta=[">="])
        by_g = {row["g"]: row["n"] for row in result}
        # anchor g: counts rows z with z.g >= ... the comparison is z.G θ y.G
        assert by_g == {1: 1, 2: 2, 3: 3} or by_g == {1: 3, 2: 2, 3: 1}

    def test_theta_vector_length_mismatch_rejected(self, e1):
        with pytest.raises(ValueError):
            ops.group_by(e1, ["b", "c"], AggVector([AggItem("n", count_star())]), theta=["="])


class TestGroupJoinMore:
    def test_groupjoin_multiple_aggregates(self, e1, e2):
        vector = AggVector([AggItem("n", count_star()), AggItem("s", sum_("e"))])
        result = ops.groupjoin(e1, e2, Attr("b").eq(Attr("d")), vector)
        by_a = {row["a"]: row for row in result}
        assert by_a[0]["n"] == 1 and by_a[0]["s"] == 0
        assert by_a[3]["n"] == 1 and by_a[3]["s"] == 2

    def test_groupjoin_empty_group_count_is_zero(self, e2):
        left = Relation.from_tuples(["x"], [(999,)])
        vector = AggVector([AggItem("n", count_star()), AggItem("s", sum_("f"))])
        result = ops.groupjoin(left, e2, Attr("x").eq(Attr("d")), vector)
        assert result.rows[0]["n"] == 0
        assert is_null(result.rows[0]["s"])
