"""Tests for rows (tuples) and relations (bags)."""

import pytest

from repro.algebra.relation import Relation
from repro.algebra.rows import Row, null_row, null_row_with_defaults
from repro.algebra.values import NULL, is_null


class TestRow:
    def test_mapping_protocol(self):
        row = Row({"a": 1, "b": NULL})
        assert row["a"] == 1
        assert len(row) == 2
        assert set(row) == {"a", "b"}

    def test_concat_disjoint(self):
        combined = Row({"a": 1}).concat(Row({"b": 2}))
        assert dict(combined) == {"a": 1, "b": 2}

    def test_concat_overlap_rejected(self):
        with pytest.raises(ValueError):
            Row({"a": 1}).concat(Row({"a": 2}))

    def test_project(self):
        row = Row({"a": 1, "b": 2, "c": 3})
        assert dict(row.project(["a", "c"])) == {"a": 1, "c": 3}

    def test_extended(self):
        row = Row({"a": 1}).extended({"g": 10})
        assert dict(row) == {"a": 1, "g": 10}

    def test_extended_overlap_rejected(self):
        with pytest.raises(ValueError):
            Row({"a": 1}).extended({"a": 2})

    def test_equality_null_safe(self):
        assert Row({"a": NULL}) == Row({"a": NULL})
        assert Row({"a": NULL}) != Row({"a": 0})

    def test_hash_consistent_with_eq(self):
        assert hash(Row({"a": 1, "b": NULL})) == hash(Row({"b": NULL, "a": 1}))

    def test_hash_numeric_normalisation(self):
        assert Row({"a": 1}) == Row({"a": 1.0})
        assert hash(Row({"a": 1})) == hash(Row({"a": 1.0}))

    def test_values_for(self):
        row = Row({"a": 1, "b": 2})
        assert row.values_for(["b", "a"]) == (2, 1)


class TestNullRows:
    def test_null_row(self):
        row = null_row(["x", "y"])
        assert is_null(row["x"]) and is_null(row["y"])

    def test_null_row_with_defaults(self):
        row = null_row_with_defaults(["x", "y", "z"], {"y": 7})
        assert is_null(row["x"])
        assert row["y"] == 7
        assert is_null(row["z"])


class TestRelation:
    def test_from_tuples(self):
        rel = Relation.from_tuples(["a", "b"], [(1, 2), (3, 4)])
        assert len(rel) == 2
        assert rel.attributes == ("a", "b")

    def test_schema_mismatch_rejected(self):
        with pytest.raises(ValueError):
            Relation(["a"], [Row({"b": 1})])

    def test_bag_equality_ignores_order(self):
        r1 = Relation.from_tuples(["a"], [(1,), (2,)])
        r2 = Relation.from_tuples(["a"], [(2,), (1,)])
        assert r1 == r2

    def test_bag_equality_counts_duplicates(self):
        r1 = Relation.from_tuples(["a"], [(1,), (1,)])
        r2 = Relation.from_tuples(["a"], [(1,)])
        assert r1 != r2

    def test_equality_across_column_order(self):
        r1 = Relation.from_tuples(["a", "b"], [(1, 2)])
        r2 = Relation.from_tuples(["b", "a"], [(2, 1)])
        assert r1 == r2

    def test_is_duplicate_free(self):
        assert Relation.from_tuples(["a"], [(1,), (2,)]).is_duplicate_free()
        assert not Relation.from_tuples(["a"], [(1,), (1,)]).is_duplicate_free()

    def test_pretty_renders_null_as_dash(self):
        rel = Relation(["a"], [Row({"a": NULL})])
        assert "-" in rel.pretty()

    def test_relation_unhashable(self):
        with pytest.raises(TypeError):
            hash(Relation(["a"], []))
