"""Tests for the scalar expression language (3VL evaluation, attributes)."""

import pytest

from repro.algebra.expressions import (
    Attr,
    BinOp,
    Case,
    Const,
    IsNull,
    Logical,
    Not,
    attrs_of,
    conjunction,
    rejects_nulls_on,
)
from repro.algebra.rows import Row
from repro.algebra.values import NULL, is_null


ROW = Row({"a": 1, "b": 2, "n": NULL})


class TestBasics:
    def test_attr(self):
        assert Attr("a").eval(ROW) == 1
        assert Attr("a").attributes() == frozenset({"a"})

    def test_const(self):
        assert Const(42).eval(ROW) == 42
        assert Const(42).attributes() == frozenset()

    def test_comparison(self):
        assert BinOp("<", Attr("a"), Attr("b")).eval(ROW) is True
        assert BinOp("=", Attr("a"), Attr("b")).eval(ROW) is False

    def test_comparison_with_null_is_null(self):
        assert is_null(BinOp("=", Attr("a"), Attr("n")).eval(ROW))

    def test_arithmetic(self):
        assert BinOp("*", Attr("a"), Attr("b")).eval(ROW) == 2
        assert is_null(BinOp("*", Attr("a"), Attr("n")).eval(ROW))

    def test_operator_sugar(self):
        assert (Attr("a") + Attr("b")).eval(ROW) == 3
        assert (Attr("b") - Attr("a")).eval(ROW) == 1
        assert (Attr("b") / Attr("b")).eval(ROW) == 1
        assert Attr("a").eq(Const(1)).eval(ROW) is True

    def test_invalid_op_rejected(self):
        with pytest.raises(ValueError):
            BinOp("**", Attr("a"), Attr("b"))


class TestLogical:
    def test_and_or(self):
        t = Const(True)
        f = Const(False)
        assert Logical("and", (t, t)).eval(ROW) is True
        assert Logical("and", (t, f)).eval(ROW) is False
        assert Logical("or", (f, t)).eval(ROW) is True

    def test_and_with_unknown(self):
        unknown = BinOp("=", Attr("n"), Const(1))
        assert is_null(Logical("and", (Const(True), unknown)).eval(ROW))
        assert Logical("and", (Const(False), unknown)).eval(ROW) is False

    def test_not(self):
        assert Not(Const(True)).eval(ROW) is False
        assert is_null(Not(BinOp("=", Attr("n"), Const(1))).eval(ROW))

    def test_empty_logical_rejected(self):
        with pytest.raises(ValueError):
            Logical("and", ())

    def test_attributes_union(self):
        expr = Logical("and", (Attr("a").eq(Const(1)), Attr("b").eq(Attr("n"))))
        assert expr.attributes() == frozenset({"a", "b", "n"})


class TestCaseIsNull:
    def test_is_null(self):
        assert IsNull(Attr("n")).eval(ROW) is True
        assert IsNull(Attr("a")).eval(ROW) is False

    def test_case_when(self):
        expr = Case(IsNull(Attr("n")), Const(0), Attr("a"))
        assert expr.eval(ROW) == 0
        expr2 = Case(IsNull(Attr("a")), Const(0), Attr("b"))
        assert expr2.eval(ROW) == 2

    def test_case_unknown_condition_takes_else(self):
        expr = Case(BinOp("=", Attr("n"), Const(1)), Const("then"), Const("else"))
        assert expr.eval(ROW) == "else"


class TestHelpers:
    def test_attrs_of_none(self):
        assert attrs_of(None) == frozenset()

    def test_conjunction_single(self):
        p = Attr("a").eq(Const(1))
        assert conjunction([p]) is p

    def test_conjunction_many(self):
        p1 = Attr("a").eq(Const(1))
        p2 = Attr("b").eq(Const(2))
        combined = conjunction([p1, p2])
        assert combined.eval(ROW) is True

    def test_conjunction_empty_rejected(self):
        with pytest.raises(ValueError):
            conjunction([])

    def test_equality_rejects_nulls_on_both_sides(self):
        pred = Attr("a").eq(Attr("x"))
        assert rejects_nulls_on(pred, {"a"})
        assert rejects_nulls_on(pred, {"x"})
        assert not rejects_nulls_on(pred, {"b"})

    def test_conjunction_rejects_if_any_conjunct_does(self):
        pred = Logical("and", (Attr("a").eq(Attr("x")), Attr("y").eq(Const(1))))
        assert rejects_nulls_on(pred, {"a"})
        assert rejects_nulls_on(pred, {"y"})

    def test_disjunction_requires_all(self):
        # A disjunction only rejects NULLs if *every* disjunct does.
        pred = Logical("or", (Attr("a").eq(Attr("x")), Attr("y").eq(Const(1))))
        assert not rejects_nulls_on(pred, {"a"})
        both = Logical("or", (Attr("a").eq(Attr("x")), Attr("a").eq(Const(1))))
        assert rejects_nulls_on(both, {"a"})
