"""Tests for SQL values and three-valued logic."""

import pytest

from repro.algebra.values import (
    NULL,
    Null,
    group_key,
    is_null,
    sql_and,
    sql_arith,
    sql_compare,
    sql_eq,
    sql_not,
    sql_or,
)


class TestNull:
    def test_null_is_singleton(self):
        assert Null() is NULL
        assert Null() is Null()

    def test_null_repr_matches_paper(self):
        assert repr(NULL) == "-"

    def test_null_is_falsy(self):
        assert not NULL

    def test_is_null(self):
        assert is_null(NULL)
        assert not is_null(0)
        assert not is_null("")
        assert not is_null(None) is False or True  # None is not SQL NULL

    def test_null_equals_only_itself(self):
        assert NULL == NULL
        assert not (NULL == 0)
        assert not (NULL == "")


class TestComparisons:
    def test_eq_with_values(self):
        assert sql_eq(1, 1) is True
        assert sql_eq(1, 2) is False

    def test_eq_with_null_is_unknown(self):
        assert sql_eq(NULL, 1) is None
        assert sql_eq(1, NULL) is None
        assert sql_eq(NULL, NULL) is None

    @pytest.mark.parametrize(
        "op,left,right,expected",
        [
            ("=", 3, 3, True),
            ("<>", 3, 4, True),
            ("<", 3, 4, True),
            ("<=", 4, 4, True),
            (">", 5, 4, True),
            (">=", 3, 4, False),
        ],
    )
    def test_comparison_table(self, op, left, right, expected):
        assert sql_compare(op, left, right) is expected

    def test_comparison_null_propagates(self):
        for op in ("=", "<>", "<", "<=", ">", ">="):
            assert sql_compare(op, NULL, 1) is None
            assert sql_compare(op, 1, NULL) is None

    def test_unknown_operator_raises(self):
        with pytest.raises(ValueError):
            sql_compare("!=", 1, 2)


class TestThreeValuedLogic:
    def test_and_false_dominates_unknown(self):
        assert sql_and(False, None) is False
        assert sql_and(None, False) is False

    def test_and_unknown(self):
        assert sql_and(True, None) is None
        assert sql_and(None, None) is None

    def test_and_true(self):
        assert sql_and(True, True) is True

    def test_or_true_dominates_unknown(self):
        assert sql_or(True, None) is True
        assert sql_or(None, True) is True

    def test_or_unknown(self):
        assert sql_or(False, None) is None

    def test_not(self):
        assert sql_not(True) is False
        assert sql_not(False) is True
        assert sql_not(None) is None


class TestArithmetic:
    def test_basic_ops(self):
        assert sql_arith("+", 2, 3) == 5
        assert sql_arith("-", 2, 3) == -1
        assert sql_arith("*", 2, 3) == 6
        assert sql_arith("/", 6, 3) == 2

    def test_null_absorbing(self):
        for op in "+-*/":
            assert is_null(sql_arith(op, NULL, 3))
            assert is_null(sql_arith(op, 3, NULL))

    def test_division_by_zero_yields_null(self):
        assert is_null(sql_arith("/", 1, 0))


class TestGroupKey:
    def test_null_groups_with_null(self):
        assert group_key(NULL) == group_key(NULL)

    def test_integral_float_normalisation(self):
        assert group_key(1.0) == group_key(1)

    def test_strings_passthrough(self):
        assert group_key("x") == "x"
