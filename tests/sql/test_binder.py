"""Tests for the SQL binder: name resolution, tree building, selectivities."""

import pytest

from repro.exec import execute
from repro.optimizer import optimize
from repro.query.canonical import canonical_plan
from repro.rewrites.pushdown import OpKind
from repro.sql import BindError, Catalog, TableStats, parse_query
from repro.tpch import micro_database


@pytest.fixture
def catalog():
    return Catalog.from_tpch()


EX_SQL = """
  SELECT ns.n_name, nc.n_name, count(*) AS cnt
  FROM nation ns
  JOIN supplier s ON ns.n_nationkey = s.s_nationkey
  FULL JOIN nation nc ON ns.n_nationkey = nc.n_nationkey
  JOIN customer c ON nc.n_nationkey = c.c_nationkey
  GROUP BY ns.n_name, nc.n_name
"""


class TestBinding:
    def test_ex_query_binds(self, catalog):
        query = parse_query(EX_SQL, catalog)
        assert len(query.relations) == 4
        assert query.edges[1].op is OpKind.FULL_OUTER
        assert query.group_by == ("ns.n_name", "nc.n_name")

    def test_unknown_table(self, catalog):
        with pytest.raises(BindError):
            parse_query("SELECT count(*) FROM nowhere", catalog)

    def test_unknown_column(self, catalog):
        with pytest.raises(BindError):
            parse_query(
                "SELECT count(*) FROM nation n GROUP BY n.bogus", catalog
            )

    def test_ambiguous_column(self, catalog):
        with pytest.raises(BindError):
            parse_query(
                "SELECT count(*) FROM nation a JOIN nation b ON a.n_nationkey = b.n_nationkey "
                "GROUP BY n_name",
                catalog,
            )

    def test_unqualified_column_resolution(self, catalog):
        query = parse_query(
            "SELECT count(*) FROM customer JOIN orders ON c_custkey = o_custkey "
            "GROUP BY c_nationkey",
            catalog,
        )
        assert query.group_by == ("customer.c_nationkey",)

    def test_duplicate_alias_rejected(self, catalog):
        with pytest.raises(BindError):
            parse_query(
                "SELECT count(*) FROM nation x JOIN supplier x ON x.n_nationkey = x.s_nationkey",
                catalog,
            )

    def test_select_column_requires_group_by(self, catalog):
        with pytest.raises(BindError):
            parse_query("SELECT n_name, count(*) FROM nation", catalog)

    def test_aggregate_in_where_rejected(self, catalog):
        with pytest.raises(BindError):
            parse_query(
                "SELECT count(*) FROM nation WHERE sum(n_nationkey) = 1 GROUP BY n_name",
                catalog,
            )


class TestWhereClassification:
    def test_local_predicates_assigned(self, catalog):
        query = parse_query(
            "SELECT count(*) FROM customer c JOIN orders o ON c.c_custkey = o.o_custkey "
            "WHERE c.c_mktsegment = 'BUILDING' AND o.o_orderdate < 1169 "
            "GROUP BY c.c_nationkey",
            catalog,
        )
        assert set(query.local_predicates) == {0, 1}
        # equality with constant: 1/5 for the 5 market segments
        assert query.local_predicates[0][1] == pytest.approx(0.2)
        # range predicate: the 1/3 default
        assert query.local_predicates[1][1] == pytest.approx(1 / 3)

    def test_cycle_predicate_becomes_floating_edge(self, catalog):
        query = parse_query(
            "SELECT count(*) FROM customer c "
            "JOIN orders o ON c.c_custkey = o.o_custkey "
            "JOIN lineitem l ON o.o_orderkey = l.l_orderkey "
            "JOIN supplier s ON l.l_suppkey = s.s_suppkey "
            "WHERE c.c_nationkey = s.s_nationkey "
            "GROUP BY c.c_nationkey",
            catalog,
        )
        assert len(query.floating_edge_ids) == 1

    def test_multi_table_non_equality_rejected(self, catalog):
        with pytest.raises(BindError):
            parse_query(
                "SELECT count(*) FROM customer c JOIN orders o ON c.c_custkey = o.o_custkey "
                "WHERE c.c_acctbal < o.o_totalprice GROUP BY c.c_nationkey",
                catalog,
            )

    def test_join_selectivity_uses_distinct_counts(self, catalog):
        query = parse_query(
            "SELECT count(*) FROM customer c JOIN orders o ON c.c_custkey = o.o_custkey "
            "GROUP BY c.c_nationkey",
            catalog,
        )
        assert query.edges[0].selectivity == pytest.approx(1 / 150_000)


class TestCustomCatalog:
    def test_register_and_bind(self):
        catalog = Catalog()
        catalog.register(
            TableStats("t", ("id", "v"), 100.0, {"id": 100.0}, (frozenset({"id"}),))
        )
        catalog.register(TableStats("u", ("id", "w"), 50.0, {"id": 50.0}))
        query = parse_query(
            "SELECT sum(t.v) FROM t JOIN u ON t.id = u.id GROUP BY t.id", catalog
        )
        assert len(query.relations) == 2
        assert query.relations[0].duplicate_free


class TestSqlEndToEnd:
    def test_parsed_ex_optimizes_and_executes(self, catalog):
        query = parse_query(EX_SQL, catalog)
        database = micro_database(query)
        # alias names used in SQL must map onto micro tables
        canonical = execute(canonical_plan(query), database)
        for strategy in ("dphyp", "ea-prune", "h2"):
            result = optimize(query, strategy)
            assert execute(result.plan.node, database) == canonical

    def test_parsed_ex_shows_the_paper_gain(self, catalog):
        query = parse_query(EX_SQL, catalog)
        lazy = optimize(query, "dphyp")
        eager = optimize(query, "ea-prune")
        assert eager.cost < lazy.cost * 1e-3
