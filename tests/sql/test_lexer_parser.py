"""Tests for the SQL tokenizer and parser."""

import pytest

from repro.sql.lexer import SqlSyntaxError, tokenize
from repro.sql.parser import (
    Binary,
    ColumnRef,
    FuncCall,
    Literal,
    parse_select,
)


class TestLexer:
    def test_keywords_case_insensitive(self):
        tokens = tokenize("SELECT sElEcT select")
        assert all(t.kind == "keyword" and t.value == "select" for t in tokens[:-1])

    def test_identifiers_preserve_case(self):
        tokens = tokenize("LineItem")
        assert tokens[0].kind == "ident" and tokens[0].value == "LineItem"

    def test_numbers(self):
        tokens = tokenize("42 3.14")
        assert [t.value for t in tokens[:-1]] == ["42", "3.14"]

    def test_strings(self):
        tokens = tokenize("'BUILDING'")
        assert tokens[0].kind == "string" and tokens[0].value == "BUILDING"

    def test_unterminated_string(self):
        with pytest.raises(SqlSyntaxError):
            tokenize("'oops")

    def test_two_char_symbols(self):
        tokens = tokenize("<= >= <> !=")
        assert [t.value for t in tokens[:-1]] == ["<=", ">=", "<>", "!="]

    def test_unknown_character(self):
        with pytest.raises(SqlSyntaxError):
            tokenize("select @")

    def test_eof_token(self):
        assert tokenize("")[-1].kind == "eof"


class TestParser:
    def test_minimal_query(self):
        stmt = parse_select("SELECT count(*) FROM t")
        assert stmt.base.table == "t"
        assert stmt.items[0].expr == FuncCall("count", None)

    def test_aliases(self):
        stmt = parse_select("SELECT count(*) c FROM t AS x JOIN u y ON x.a = y.b")
        assert stmt.items[0].alias == "c"
        assert stmt.base.alias == "x"
        assert stmt.joins[0].table.alias == "y"

    def test_join_kinds(self):
        stmt = parse_select(
            "SELECT count(*) FROM a JOIN b ON a.x = b.x "
            "LEFT OUTER JOIN c ON b.y = c.y FULL JOIN d ON c.z = d.z"
        )
        assert [j.kind for j in stmt.joins] == ["inner", "left", "full"]

    def test_where_and_group_by(self):
        stmt = parse_select(
            "SELECT sum(a.v) FROM a WHERE a.x = 1 AND a.y > 2 GROUP BY a.g, a.h"
        )
        assert stmt.where is not None
        assert [ref.column for ref in stmt.group_by] == ["g", "h"]

    def test_aggregate_variants(self):
        stmt = parse_select(
            "SELECT count(*), count(DISTINCT a.v), sum(a.v * 2), avg(a.v) FROM a"
        )
        calls = [item.expr for item in stmt.items]
        assert calls[0] == FuncCall("count", None)
        assert calls[1].distinct
        assert isinstance(calls[2].argument, Binary)
        assert calls[3].name == "avg"

    def test_arithmetic_precedence(self):
        stmt = parse_select("SELECT sum(a.v + a.w * 2) FROM a")
        arg = stmt.items[0].expr.argument
        assert arg.op == "+"
        assert arg.right.op == "*"

    def test_parenthesised_expression(self):
        stmt = parse_select("SELECT sum((a.v + a.w) * 2) FROM a")
        arg = stmt.items[0].expr.argument
        assert arg.op == "*"

    def test_string_literal_in_where(self):
        stmt = parse_select("SELECT count(*) FROM a WHERE a.seg = 'BUILDING'")
        assert stmt.where.right == Literal("BUILDING")

    def test_count_star_only_for_count(self):
        with pytest.raises(SqlSyntaxError):
            parse_select("SELECT sum(*) FROM a")

    def test_missing_on_rejected(self):
        with pytest.raises(SqlSyntaxError):
            parse_select("SELECT count(*) FROM a JOIN b")

    def test_trailing_garbage_rejected(self):
        with pytest.raises(SqlSyntaxError):
            parse_select("SELECT count(*) FROM a LIMIT 5")

    def test_unqualified_column(self):
        stmt = parse_select("SELECT count(*) FROM a GROUP BY g")
        assert stmt.group_by[0] == ColumnRef(None, "g")
