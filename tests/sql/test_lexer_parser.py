"""Tests for the SQL tokenizer and parser."""

import pytest

from repro.sql.lexer import SqlSyntaxError, tokenize
from repro.sql.parser import (
    Binary,
    ColumnRef,
    Exists,
    FuncCall,
    InSubquery,
    IsNullExpr,
    Literal,
    NotExpr,
    parse_select,
)


class TestLexer:
    def test_keywords_case_insensitive(self):
        tokens = tokenize("SELECT sElEcT select")
        assert all(t.kind == "keyword" and t.value == "select" for t in tokens[:-1])

    def test_identifiers_preserve_case(self):
        tokens = tokenize("LineItem")
        assert tokens[0].kind == "ident" and tokens[0].value == "LineItem"

    def test_numbers(self):
        tokens = tokenize("42 3.14")
        assert [t.value for t in tokens[:-1]] == ["42", "3.14"]

    def test_strings(self):
        tokens = tokenize("'BUILDING'")
        assert tokens[0].kind == "string" and tokens[0].value == "BUILDING"

    def test_unterminated_string(self):
        with pytest.raises(SqlSyntaxError):
            tokenize("'oops")

    def test_two_char_symbols(self):
        tokens = tokenize("<= >= <> !=")
        assert [t.value for t in tokens[:-1]] == ["<=", ">=", "<>", "!="]

    def test_unknown_character(self):
        with pytest.raises(SqlSyntaxError):
            tokenize("select @")

    def test_eof_token(self):
        assert tokenize("")[-1].kind == "eof"


class TestParser:
    def test_minimal_query(self):
        stmt = parse_select("SELECT count(*) FROM t")
        assert stmt.base.table == "t"
        assert stmt.items[0].expr == FuncCall("count", None)

    def test_aliases(self):
        stmt = parse_select("SELECT count(*) c FROM t AS x JOIN u y ON x.a = y.b")
        assert stmt.items[0].alias == "c"
        assert stmt.base.alias == "x"
        assert stmt.joins[0].table.alias == "y"

    def test_join_kinds(self):
        stmt = parse_select(
            "SELECT count(*) FROM a JOIN b ON a.x = b.x "
            "LEFT OUTER JOIN c ON b.y = c.y FULL JOIN d ON c.z = d.z"
        )
        assert [j.kind for j in stmt.joins] == ["inner", "left", "full"]

    def test_where_and_group_by(self):
        stmt = parse_select(
            "SELECT sum(a.v) FROM a WHERE a.x = 1 AND a.y > 2 GROUP BY a.g, a.h"
        )
        assert stmt.where is not None
        assert [ref.column for ref in stmt.group_by] == ["g", "h"]

    def test_aggregate_variants(self):
        stmt = parse_select(
            "SELECT count(*), count(DISTINCT a.v), sum(a.v * 2), avg(a.v) FROM a"
        )
        calls = [item.expr for item in stmt.items]
        assert calls[0] == FuncCall("count", None)
        assert calls[1].distinct
        assert isinstance(calls[2].argument, Binary)
        assert calls[3].name == "avg"

    def test_arithmetic_precedence(self):
        stmt = parse_select("SELECT sum(a.v + a.w * 2) FROM a")
        arg = stmt.items[0].expr.argument
        assert arg.op == "+"
        assert arg.right.op == "*"

    def test_parenthesised_expression(self):
        stmt = parse_select("SELECT sum((a.v + a.w) * 2) FROM a")
        arg = stmt.items[0].expr.argument
        assert arg.op == "*"

    def test_string_literal_in_where(self):
        stmt = parse_select("SELECT count(*) FROM a WHERE a.seg = 'BUILDING'")
        assert stmt.where.right == Literal("BUILDING")

    def test_count_star_only_for_count(self):
        with pytest.raises(SqlSyntaxError):
            parse_select("SELECT sum(*) FROM a")

    def test_missing_on_rejected(self):
        with pytest.raises(SqlSyntaxError):
            parse_select("SELECT count(*) FROM a JOIN b")

    def test_trailing_garbage_rejected(self):
        with pytest.raises(SqlSyntaxError):
            parse_select("SELECT count(*) FROM a LIMIT 5")

    def test_unqualified_column(self):
        stmt = parse_select("SELECT count(*) FROM a GROUP BY g")
        assert stmt.group_by[0] == ColumnRef(None, "g")


class TestExtendedJoins:
    def test_right_join_parses_as_right(self):
        """Regression: `RIGHT JOIN` used to die with `expected 'eof', found
        'right'` — the keyword was reserved but never consumed."""
        stmt = parse_select("SELECT count(*) FROM a RIGHT JOIN b ON a.x = b.x")
        assert [j.kind for j in stmt.joins] == ["right"]

    def test_right_outer_join(self):
        stmt = parse_select("SELECT count(*) FROM a RIGHT OUTER JOIN b ON a.x = b.x")
        assert stmt.joins[0].kind == "right"

    def test_cross_join(self):
        stmt = parse_select("SELECT count(*) FROM a CROSS JOIN b")
        assert stmt.joins[0].kind == "cross"
        assert stmt.joins[0].condition is None

    def test_comma_separated_from(self):
        stmt = parse_select("SELECT count(*) FROM a, b x, c WHERE a.x = x.y")
        assert [t.table for t in stmt.tables] == ["a", "b", "c"]
        assert stmt.tables[1].alias == "x"
        assert stmt.base.table == "a"


class TestPredicates:
    def test_is_null(self):
        stmt = parse_select("SELECT count(*) FROM a WHERE a.x IS NULL")
        assert stmt.where == IsNullExpr(ColumnRef("a", "x"), negated=False)

    def test_is_not_null(self):
        stmt = parse_select("SELECT count(*) FROM a WHERE a.x IS NOT NULL")
        assert stmt.where == IsNullExpr(ColumnRef("a", "x"), negated=True)

    def test_prefix_not(self):
        """Regression: `where not a.x = 1` raised `unexpected token 'not'`."""
        stmt = parse_select("SELECT count(*) FROM a WHERE NOT a.x = 1")
        assert stmt.where == NotExpr(Binary("=", ColumnRef("a", "x"), Literal(1)))

    def test_not_parenthesised_condition(self):
        stmt = parse_select("SELECT count(*) FROM a WHERE NOT (a.x = 1 OR a.y = 2)")
        assert isinstance(stmt.where, NotExpr)
        assert stmt.where.operand.op == "or"

    def test_double_not(self):
        stmt = parse_select("SELECT count(*) FROM a WHERE NOT NOT a.x = 1")
        assert stmt.where == NotExpr(NotExpr(Binary("=", ColumnRef("a", "x"), Literal(1))))


class TestSubqueries:
    def test_exists(self):
        stmt = parse_select(
            "SELECT count(*) FROM a WHERE EXISTS (SELECT * FROM b WHERE b.x = a.x)"
        )
        assert isinstance(stmt.where, Exists)
        assert not stmt.where.negated
        assert stmt.where.subquery.tables[0].table == "b"
        assert stmt.where.subquery.select is None

    def test_not_exists_folds_negation(self):
        stmt = parse_select(
            "SELECT count(*) FROM a WHERE NOT EXISTS (SELECT * FROM b WHERE b.x = a.x)"
        )
        assert isinstance(stmt.where, Exists) and stmt.where.negated

    def test_not_parenthesised_exists_folds(self):
        stmt = parse_select(
            "SELECT count(*) FROM a WHERE NOT (EXISTS (SELECT * FROM b WHERE b.x = a.x))"
        )
        assert isinstance(stmt.where, Exists) and stmt.where.negated

    def test_in_subquery(self):
        stmt = parse_select(
            "SELECT count(*) FROM a WHERE a.x IN (SELECT b.y FROM b)"
        )
        assert isinstance(stmt.where, InSubquery)
        assert stmt.where.needle == ColumnRef("a", "x")
        assert stmt.where.subquery.select == ColumnRef("b", "y")
        assert not stmt.where.negated

    def test_not_in_subquery(self):
        stmt = parse_select(
            "SELECT count(*) FROM a WHERE a.x NOT IN (SELECT b.y FROM b)"
        )
        assert isinstance(stmt.where, InSubquery) and stmt.where.negated

    def test_exists_subquery_with_joins_and_where(self):
        stmt = parse_select(
            "SELECT count(*) FROM a WHERE EXISTS ("
            "SELECT 1 FROM b JOIN c ON b.k = c.k WHERE b.x = a.x AND c.v > 3)"
        )
        sub = stmt.where.subquery
        assert [j.kind for j in sub.joins] == ["inner"]
        assert sub.where is not None

    def test_exists_conjunction(self):
        stmt = parse_select(
            "SELECT count(*) FROM a WHERE a.v > 1 "
            "AND EXISTS (SELECT * FROM b WHERE b.x = a.x)"
        )
        assert stmt.where.op == "and"
        assert isinstance(stmt.where.right, Exists)

    def test_in_requires_subquery(self):
        with pytest.raises(SqlSyntaxError, match="value lists are not supported"):
            parse_select("SELECT count(*) FROM a WHERE a.x IN (1, 2, 3)")

    def test_group_by_rejected_in_subquery(self):
        with pytest.raises(SqlSyntaxError, match="GROUP BY is not supported inside EXISTS"):
            parse_select(
                "SELECT count(*) FROM a WHERE EXISTS "
                "(SELECT * FROM b WHERE b.x = a.x GROUP BY b.g)"
            )


class TestErrorMessages:
    """Parser errors must name the construct and the offset accurately."""

    def test_reserved_keyword_after_statement(self):
        """Regression: trailing reserved keywords produced `expected 'eof'`."""
        with pytest.raises(SqlSyntaxError, match="'order' is reserved but not yet supported"):
            parse_select("SELECT count(*) FROM a ORDER BY g")

    def test_reserved_keyword_in_predicate(self):
        with pytest.raises(SqlSyntaxError, match="'between' is reserved but not yet supported"):
            parse_select("SELECT count(*) FROM a WHERE a.x BETWEEN 1 AND 2")

    def test_reserved_keyword_having(self):
        with pytest.raises(SqlSyntaxError, match="'having' is reserved but not yet supported"):
            parse_select("SELECT count(*) FROM a GROUP BY g HAVING count(*) > 1")

    def test_reserved_keyword_limit(self):
        with pytest.raises(SqlSyntaxError, match="'limit' is reserved but not yet supported"):
            parse_select("SELECT count(*) FROM a LIMIT 5")

    def test_error_offset_is_accurate(self):
        sql = "SELECT count(*) FROM a ORDER BY g"
        with pytest.raises(SqlSyntaxError, match=f"at offset {sql.index('ORDER')}"):
            parse_select(sql)

    def test_incomplete_predicate_names_alternatives(self):
        with pytest.raises(
            SqlSyntaxError,
            match=r"expected a comparison operator, IS \[NOT\] NULL or \[NOT\] IN",
        ):
            parse_select("SELECT count(*) FROM a WHERE a.x")

    def test_exists_requires_parenthesised_subquery(self):
        with pytest.raises(SqlSyntaxError, match="EXISTS requires a parenthesised subquery"):
            parse_select("SELECT count(*) FROM a WHERE EXISTS b")

    def test_is_requires_null(self):
        with pytest.raises(SqlSyntaxError, match="expected 'null'"):
            parse_select("SELECT count(*) FROM a WHERE a.x IS 3")
