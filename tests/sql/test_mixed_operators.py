"""The full paper operator surface through SQL: binding + 3VL execution.

Covers the tentpole pipeline: EXISTS / NOT EXISTS / IN / NOT IN become
semijoin / antijoin edges, RIGHT JOIN normalizes to a swapped left
outerjoin, comma-FROM becomes mergeable cross edges, and IS NULL / NOT
carry SQL three-valued semantics from the parser through the conflict
detector, DPhyp, and the interpreter.
"""

import pytest

from repro.algebra.relation import Relation
from repro.algebra.rows import Row
from repro.algebra.values import NULL
from repro.exec import execute
from repro.optimizer import optimize, prepare
from repro.query.canonical import canonical_plan
from repro.query.tree import TreeLeaf, TreeNode
from repro.rewrites.pushdown import OpKind
from repro.sql import BindError, Catalog, TableStats, parse_query
from repro.tpch import micro_database


@pytest.fixture
def tpch():
    return Catalog.from_tpch()


@pytest.fixture
def catalog():
    """Small tables with nullable x columns (v is a one-row dimension)."""
    cat = Catalog()
    cat.register(TableStats("t", ("id", "x", "g"), 6.0, {"id": 6.0, "x": 3.0, "g": 2.0}))
    cat.register(TableStats("u", ("id", "x"), 4.0, {"id": 4.0, "x": 2.0}))
    cat.register(TableStats("v", ("id",), 1.0, {"id": 1.0}))
    return cat


@pytest.fixture
def database():
    t_rows = [
        Row({"t.id": 1, "t.x": 1, "t.g": "a"}),
        Row({"t.id": 2, "t.x": 2, "t.g": "a"}),
        Row({"t.id": 3, "t.x": 3, "t.g": "b"}),
        Row({"t.id": 4, "t.x": NULL, "t.g": "b"}),
        Row({"t.id": 5, "t.x": 1, "t.g": "b"}),
        Row({"t.id": 6, "t.x": NULL, "t.g": "a"}),
    ]
    u_rows = [
        Row({"u.id": 1, "u.x": 1}),
        Row({"u.id": 2, "u.x": 2}),
        Row({"u.id": 3, "u.x": NULL}),
        Row({"u.id": 4, "u.x": 1}),
    ]
    return {
        "t": Relation(("t.id", "t.x", "t.g"), t_rows),
        "u": Relation(("u.id", "u.x"), u_rows),
        "v": Relation(("v.id",), [Row({"v.id": 1})]),
    }


def counts_by_group(relation, group_attr, count_attr):
    return {row[group_attr]: row[count_attr] for row in relation}


class TestSemijoinBinding:
    def test_exists_binds_semijoin_edge(self, tpch):
        query = parse_query(
            "SELECT n.n_name, count(*) AS cnt FROM nation n WHERE EXISTS "
            "(SELECT * FROM supplier s WHERE s.s_nationkey = n.n_nationkey) "
            "GROUP BY n.n_name",
            tpch,
        )
        assert [e.op for e in query.edges] == [OpKind.LEFT_SEMI]
        assert len(query.relations) == 2
        # equijoin correlation: 1/max(d) over the 25 nation keys
        assert query.edges[0].selectivity == pytest.approx(1 / 25)

    def test_not_exists_binds_antijoin_edge(self, tpch):
        query = parse_query(
            "SELECT n.n_name, count(*) AS cnt FROM nation n WHERE NOT EXISTS "
            "(SELECT * FROM supplier s WHERE s.s_nationkey = n.n_nationkey) "
            "GROUP BY n.n_name",
            tpch,
        )
        assert [e.op for e in query.edges] == [OpKind.LEFT_ANTI]

    def test_in_binds_semijoin_on_equality(self, tpch):
        query = parse_query(
            "SELECT c.c_nationkey, count(*) AS cnt FROM customer c WHERE "
            "c.c_custkey IN (SELECT o.o_custkey FROM orders o) "
            "GROUP BY c.c_nationkey",
            tpch,
        )
        assert [e.op for e in query.edges] == [OpKind.LEFT_SEMI]
        assert "c.c_custkey" in {a for a in query.edges[0].predicate.attributes()}
        assert "o.o_custkey" in {a for a in query.edges[0].predicate.attributes()}

    def test_not_in_binds_antijoin(self, tpch):
        query = parse_query(
            "SELECT c.c_nationkey, count(*) AS cnt FROM customer c WHERE "
            "c.c_custkey NOT IN (SELECT o.o_custkey FROM orders o) "
            "GROUP BY c.c_nationkey",
            tpch,
        )
        assert [e.op for e in query.edges] == [OpKind.LEFT_ANTI]

    def test_subquery_local_predicate_stays_inside(self, tpch):
        query = parse_query(
            "SELECT n.n_name, count(*) AS cnt FROM nation n WHERE EXISTS "
            "(SELECT * FROM supplier s WHERE s.s_nationkey = n.n_nationkey "
            "AND s.s_acctbal > 100) GROUP BY n.n_name",
            tpch,
        )
        # the uncorrelated half filters the supplier vertex (index 1)
        assert set(query.local_predicates) == {1}

    def test_subquery_with_join_builds_bushy_right_subtree(self, tpch):
        query = parse_query(
            "SELECT n.n_name, count(*) AS cnt FROM nation n WHERE EXISTS "
            "(SELECT * FROM supplier s JOIN partsupp ps "
            "ON s.s_suppkey = ps.ps_suppkey WHERE s.s_nationkey = n.n_nationkey) "
            "GROUP BY n.n_name",
            tpch,
        )
        ops = [e.op for e in query.edges]
        assert OpKind.LEFT_SEMI in ops and OpKind.INNER in ops
        semijoin = next(
            node for node in [query.tree] if isinstance(node, TreeNode)
        )
        assert query.edges[semijoin.edge_id].op is OpKind.LEFT_SEMI
        assert isinstance(semijoin.right, TreeNode)  # s ⋈ ps below the semijoin

    def test_conflict_detection_engages(self, tpch):
        """The acceptance-criterion path: DPhyp + conflict detector."""
        query = parse_query(
            "SELECT n.n_name, count(*) AS cnt FROM nation n "
            "JOIN supplier s ON n.n_nationkey = s.s_nationkey WHERE EXISTS "
            "(SELECT * FROM customer c WHERE c.c_nationkey = n.n_nationkey) "
            "GROUP BY n.n_name",
            tpch,
        )
        prepared = prepare(query)
        assert any(a.op is OpKind.LEFT_SEMI for a in prepared.annotated)
        result = optimize(query, "ea-prune", prepared=prepared)
        assert result.cost > 0


class TestRightJoinNormalization:
    def test_right_join_is_left_outer_with_swapped_inputs(self, tpch):
        """Regression for `expected 'eof', found 'right'`: pins the
        normalization a RIGHT JOIN b ≡ b LEFT JOIN a."""
        query = parse_query(
            "SELECT n.n_name, count(*) AS cnt FROM supplier s "
            "RIGHT JOIN nation n ON s.s_nationkey = n.n_nationkey "
            "GROUP BY n.n_name",
            tpch,
        )
        assert [e.op for e in query.edges] == [OpKind.LEFT_OUTER]
        assert isinstance(query.tree, TreeNode)
        # supplier is vertex 0 (FROM order), nation vertex 1; nation must
        # be the preserved (left) input.
        assert query.tree.left == TreeLeaf(1)
        assert query.tree.right == TreeLeaf(0)

    def test_right_join_equals_mirrored_left_join(self, tpch):
        right = parse_query(
            "SELECT n.n_name, count(*) AS cnt FROM supplier s "
            "RIGHT JOIN nation n ON s.s_nationkey = n.n_nationkey "
            "GROUP BY n.n_name",
            tpch,
        )
        left = parse_query(
            "SELECT n.n_name, count(*) AS cnt FROM nation n "
            "LEFT JOIN supplier s ON s.s_nationkey = n.n_nationkey "
            "GROUP BY n.n_name",
            tpch,
        )
        database = micro_database(right)
        assert execute(canonical_plan(right), database) == execute(
            canonical_plan(left), database
        )


class TestCommaFrom:
    def test_where_equijoin_merges_into_cross_edge(self, tpch):
        query = parse_query(
            "SELECT n.n_name, count(*) AS cnt FROM nation n, supplier s "
            "WHERE n.n_nationkey = s.s_nationkey GROUP BY n.n_name",
            tpch,
        )
        assert [e.op for e in query.edges] == [OpKind.INNER]
        assert query.floating_edge_ids == ()
        assert query.edges[0].selectivity == pytest.approx(1 / 25)

    def test_cross_join_syntax_equivalent(self, tpch):
        comma = parse_query(
            "SELECT n.n_name, count(*) AS cnt FROM nation n, supplier s "
            "WHERE n.n_nationkey = s.s_nationkey GROUP BY n.n_name", tpch
        )
        cross = parse_query(
            "SELECT n.n_name, count(*) AS cnt FROM nation n CROSS JOIN supplier s "
            "WHERE n.n_nationkey = s.s_nationkey GROUP BY n.n_name", tpch
        )
        database = micro_database(comma)
        assert execute(canonical_plan(comma), database) == execute(
            canonical_plan(cross), database
        )

    def test_unconstrained_cross_product_stays_true(self, tpch):
        query = parse_query(
            "SELECT n.n_name, count(*) AS cnt FROM nation n, region r "
            "GROUP BY n.n_name",
            tpch,
        )
        assert repr(query.edges[0].predicate) == "True"
        assert query.edges[0].selectivity == 1.0

    def test_theta_predicate_merges_too(self, tpch):
        query = parse_query(
            "SELECT n.n_name, count(*) AS cnt FROM nation n, supplier s "
            "WHERE n.n_nationkey < s.s_nationkey GROUP BY n.n_name",
            tpch,
        )
        assert query.floating_edge_ids == ()
        assert query.edges[0].selectivity == pytest.approx(1 / 3)

    def test_three_way_comma_from_executes(self, tpch):
        query = parse_query(
            "SELECT n.n_name, count(*) AS cnt FROM nation n, supplier s, customer c "
            "WHERE n.n_nationkey = s.s_nationkey AND n.n_nationkey = c.c_nationkey "
            "GROUP BY n.n_name",
            tpch,
        )
        assert all(e.op is OpKind.INNER for e in query.edges)
        database = micro_database(query)
        canonical = execute(canonical_plan(query), database)
        result = optimize(query, "ea-prune")
        assert execute(result.plan.node, database) == canonical


class TestThreeValuedLogic:
    def test_is_null_keeps_only_null_rows(self, catalog, database):
        query = parse_query(
            "SELECT t.g, count(*) AS cnt FROM t WHERE t.x IS NULL GROUP BY t.g",
            catalog,
        )
        got = counts_by_group(execute(canonical_plan(query), database), "t.g", "cnt")
        assert got == {"a": 1, "b": 1}

    def test_is_not_null(self, catalog, database):
        query = parse_query(
            "SELECT t.g, count(*) AS cnt FROM t WHERE t.x IS NOT NULL GROUP BY t.g",
            catalog,
        )
        got = counts_by_group(execute(canonical_plan(query), database), "t.g", "cnt")
        assert got == {"a": 2, "b": 2}

    def test_not_filters_unknown(self, catalog, database):
        """NOT (NULL = 1) is UNKNOWN, so NULL-x rows must not survive."""
        query = parse_query(
            "SELECT t.g, count(*) AS cnt FROM t WHERE NOT t.x = 1 GROUP BY t.g",
            catalog,
        )
        got = counts_by_group(execute(canonical_plan(query), database), "t.g", "cnt")
        assert got == {"a": 1, "b": 1}  # ids 2 and 3 only

    def test_exists_null_never_matches(self, catalog, database):
        """u has x ∈ {1, 2, NULL, 1}: t rows with x ∈ {1, 2} survive, NULLs
        and x=3 do not (NULL = anything is UNKNOWN)."""
        query = parse_query(
            "SELECT t.g, count(*) AS cnt FROM t WHERE EXISTS "
            "(SELECT * FROM u WHERE u.x = t.x) GROUP BY t.g",
            catalog,
        )
        got = counts_by_group(execute(canonical_plan(query), database), "t.g", "cnt")
        assert got == {"a": 2, "b": 1}  # ids 1, 2, 5

    def test_not_exists_keeps_null_rows(self, catalog, database):
        """NOT EXISTS semantics: a NULL left key never finds a partner, so
        those rows are kept — unlike SQL NOT IN."""
        query = parse_query(
            "SELECT t.g, count(*) AS cnt FROM t WHERE NOT EXISTS "
            "(SELECT * FROM u WHERE u.x = t.x) GROUP BY t.g",
            catalog,
        )
        got = counts_by_group(execute(canonical_plan(query), database), "t.g", "cnt")
        assert got == {"a": 1, "b": 2}  # ids 3, 4, 6

    def test_optimized_plans_match_canonical(self, catalog, database):
        queries = [
            "SELECT t.g, count(*) AS cnt FROM t WHERE EXISTS "
            "(SELECT * FROM u WHERE u.x = t.x) GROUP BY t.g",
            "SELECT t.g, count(*) AS cnt FROM t WHERE NOT EXISTS "
            "(SELECT * FROM u WHERE u.x = t.x) GROUP BY t.g",
            "SELECT t.g, count(*) AS cnt FROM t WHERE t.id IN "
            "(SELECT u.id FROM u) AND t.x IS NOT NULL GROUP BY t.g",
            "SELECT t.g, count(*) AS cnt FROM t WHERE t.id NOT IN "
            "(SELECT u.id FROM u) AND NOT t.x = 1 GROUP BY t.g",
        ]
        for sql in queries:
            query = parse_query(sql, catalog)
            canonical = execute(canonical_plan(query), database)
            for strategy in ("dphyp", "ea-prune", "h2"):
                result = optimize(query, strategy)
                assert execute(result.plan.node, database) == canonical, (sql, strategy)


class TestBindErrors:
    def test_nested_subquery_rejected(self, tpch):
        with pytest.raises(BindError, match="nested EXISTS/IN subqueries"):
            parse_query(
                "SELECT n.n_name, count(*) AS c FROM nation n WHERE EXISTS "
                "(SELECT * FROM supplier s WHERE s.s_nationkey = n.n_nationkey "
                "AND EXISTS (SELECT * FROM customer c WHERE c.c_nationkey = s.s_nationkey)) "
                "GROUP BY n.n_name",
                tpch,
            )

    def test_exists_under_or_rejected(self, tpch):
        with pytest.raises(BindError, match="top-level WHERE conjuncts"):
            parse_query(
                "SELECT n.n_name, count(*) AS c FROM nation n "
                "WHERE n.n_regionkey = 1 OR EXISTS "
                "(SELECT * FROM supplier s WHERE s.s_nationkey = n.n_nationkey) "
                "GROUP BY n.n_name",
                tpch,
            )

    def test_subquery_predicate_on_outer_only_rejected(self, tpch):
        with pytest.raises(BindError, match="belongs in the outer WHERE clause"):
            parse_query(
                "SELECT n.n_name, count(*) AS c FROM nation n WHERE EXISTS "
                "(SELECT * FROM supplier s WHERE n.n_regionkey = 1) "
                "GROUP BY n.n_name",
                tpch,
            )

    def test_group_by_subquery_attr_rejected(self, tpch):
        with pytest.raises(BindError, match="unknown table or alias 's'"):
            parse_query(
                "SELECT s.s_name, count(*) AS c FROM nation n WHERE EXISTS "
                "(SELECT * FROM supplier s WHERE s.s_nationkey = n.n_nationkey) "
                "GROUP BY s.s_name",
                tpch,
            )

    def test_in_needle_must_be_outer(self, tpch):
        with pytest.raises(BindError, match="unknown table or alias"):
            parse_query(
                "SELECT n.n_name, count(*) AS c FROM nation n WHERE "
                "s.s_suppkey IN (SELECT s.s_suppkey FROM supplier s) "
                "GROUP BY n.n_name",
                tpch,
            )

    def test_in_requires_plain_column(self, tpch):
        with pytest.raises(BindError, match="exactly one plain column"):
            parse_query(
                "SELECT n.n_name, count(*) AS c FROM nation n WHERE "
                "n.n_nationkey IN (SELECT s.s_suppkey + 1 FROM supplier s) "
                "GROUP BY n.n_name",
                tpch,
            )

    def test_cycle_equijoin_with_semijoin_rejected(self, tpch):
        with pytest.raises(BindError, match="all-inner-join"):
            parse_query(
                "SELECT c.c_name, count(*) AS cc FROM customer c "
                "JOIN orders o ON c.c_custkey = o.o_custkey "
                "JOIN lineitem l ON o.o_orderkey = l.l_orderkey "
                "JOIN supplier s ON l.l_suppkey = s.s_suppkey "
                "WHERE c.c_nationkey = s.s_nationkey AND EXISTS "
                "(SELECT * FROM nation n WHERE n.n_nationkey = c.c_nationkey) "
                "GROUP BY c.c_name",
                tpch,
            )


class TestCacheServing:
    """PlanCache behaviour over the new operator surface (via the facade)."""

    EXISTS_SQL = (
        "SELECT n.n_name, count(*) AS cnt FROM nation n WHERE EXISTS "
        "(SELECT * FROM supplier s WHERE s.s_nationkey = n.n_nationkey) "
        "GROUP BY n.n_name"
    )
    NOT_EXISTS_SQL = EXISTS_SQL.replace("WHERE EXISTS", "WHERE NOT EXISTS")

    def test_exists_and_not_exists_never_share_an_entry(self, tpch):
        from repro.api import PlannerSession

        with PlannerSession(catalog=tpch) as session:
            first = session.sql(self.EXISTS_SQL).optimize()
            assert not first.cache_hit
            anti = session.sql(self.NOT_EXISTS_SQL).optimize()
            assert not anti.cache_hit  # distinct problem, distinct entry
            again = session.sql(self.EXISTS_SQL).optimize()
            assert again.cache_hit
            assert again.cost == first.cost

    def test_right_join_cache_hit_serves_a_correct_plan(self, tpch):
        """Key equality across the RIGHT JOIN normalization is only safe if
        the rebound plan executes correctly under the new names."""
        from repro.api import PlannerSession

        right_sql = (
            "SELECT nn.n_name, count(*) AS cnt FROM supplier sup "
            "RIGHT JOIN nation nn ON sup.s_nationkey = nn.n_nationkey "
            "GROUP BY nn.n_name"
        )
        left_sql = (
            "SELECT n.n_name, count(*) AS cnt FROM nation n "
            "LEFT JOIN supplier s ON s.s_nationkey = n.n_nationkey "
            "GROUP BY n.n_name"
        )
        with PlannerSession(catalog=tpch) as session:
            session.sql(right_sql).optimize()
            served = session.sql(left_sql).optimize()
            assert served.cache_hit
            query = session.parse(left_sql)
            database = micro_database(query)
            assert execute(served.plan, database) == execute(
                canonical_plan(query), database
            )


class TestCommaJoinPrecedence:
    """SQL precedence: JOIN binds tighter than the comma — join clauses
    extend the last FROM item only, and a WHERE equijoin crossing the
    boundary applies *above* the join group."""

    def test_joins_extend_the_last_from_item(self, tpch):
        query = parse_query(
            "SELECT n.n_name, count(*) AS cnt FROM region r, nation n "
            "RIGHT JOIN supplier s ON n.n_nationkey = s.s_nationkey "
            "WHERE r.r_regionkey = n.n_regionkey GROUP BY n.n_name",
            tpch,
        )
        root = query.tree
        # root: the cross edge, now carrying the merged WHERE equijoin —
        # evaluated above the outer join, as SQL demands.
        assert query.edges[root.edge_id].op is OpKind.INNER
        assert "r.r_regionkey" in query.edges[root.edge_id].predicate.attributes()
        # right child: the normalized (supplier-preserving) outerjoin.
        assert isinstance(root.right, TreeNode)
        assert query.edges[root.right.edge_id].op is OpKind.LEFT_OUTER
        assert root.right.left == TreeLeaf(query.vertex_of("s.s_suppkey"))

    def test_on_clause_cannot_reach_comma_tables(self, tpch):
        with pytest.raises(BindError, match="bind looser than JOIN"):
            parse_query(
                "SELECT n.n_name, count(*) AS cnt FROM region r, nation n "
                "JOIN supplier s ON r.r_regionkey = n.n_regionkey "
                "GROUP BY n.n_name",
                tpch,
            )

    def test_where_filters_above_the_outer_join(self, catalog, database):
        """u rows without a t partner are null-extended on t; the WHERE
        equijoin against the comma table v must then filter them out
        (NULL = 1 is UNKNOWN) — it must not slip below the outer join."""
        query = parse_query(
            "SELECT u.x, count(*) AS cnt FROM v, t "
            "RIGHT JOIN u ON t.x = u.x WHERE v.id = t.id GROUP BY u.x",
            catalog,
        )
        result = execute(canonical_plan(query), database)
        # only t.id = 1 (= v.id) survives: its x=1 matches u rows 1 and 4
        assert counts_by_group(result, "u.x", "cnt") == {1: 2}
        optimized = optimize(query, "ea-prune")
        assert execute(optimized.plan.node, database) == result

    def test_three_table_subquery_conjunct_rejected(self, tpch):
        """Regression: a subquery conjunct spanning three subquery tables
        used to merge onto an edge that did not cover all of them."""
        with pytest.raises(BindError, match="exactly two comma-listed"):
            parse_query(
                "SELECT c.c_mktsegment, count(*) AS cnt FROM customer c "
                "WHERE EXISTS (SELECT * FROM nation n, supplier s, orders o "
                "WHERE n.n_nationkey + s.s_nationkey = o.o_custkey "
                "AND s.s_nationkey = n.n_nationkey "
                "AND o.o_custkey = c.c_custkey) GROUP BY c.c_mktsegment",
                tpch,
            )


class TestReviewRegressions:
    def test_constant_where_conjunct_rejected(self, tpch):
        """A table-free conjunct has no leaf to live on; pushing it to an
        arbitrary vertex gives wrong FULL OUTER JOIN results."""
        with pytest.raises(BindError, match="at least one table column"):
            parse_query(
                "SELECT n.n_name, count(*) AS cnt FROM nation n "
                "FULL JOIN supplier s ON n.n_nationkey = s.s_nationkey "
                "WHERE 1 = 0 GROUP BY n.n_name",
                tpch,
            )

    def test_unqualified_in_needle_binds_against_outer_scope(self, catalog):
        """The needle's column exists in both t and u: outer-scope
        resolution must win; only re-resolving it against the extended
        scope would flag it ambiguous."""
        query = parse_query(
            "SELECT g, count(*) AS cnt FROM t WHERE x IN "
            "(SELECT u.x FROM u) GROUP BY g",
            catalog,
        )
        assert [e.op for e in query.edges] == [OpKind.LEFT_SEMI]
        assert "t.x" in query.edges[0].predicate.attributes()
