"""Catalog.update_stats: typed drift deltas and their subscription channel."""

import pytest

from repro.service import PlanCache
from repro.service.cache import FRESH, STALE
from repro.service.fingerprint import PlanCacheKey
from repro.sql.catalog import Catalog, StatsDelta, TableStats


def stats(name: str, rows: float, distinct=None) -> TableStats:
    return TableStats(
        name=name,
        columns=("a", "b"),
        cardinality=rows,
        distinct=distinct if distinct is not None else {"a": rows, "b": rows / 2},
    )


def make_catalog() -> Catalog:
    catalog = Catalog()
    catalog.register(stats("orders", 100.0))
    catalog.register(stats("customer", 50.0))
    return catalog


class TestUpdateStats:
    def test_emits_old_and_new(self):
        catalog = make_catalog()
        delta = catalog.update_stats("orders", stats("orders", 400.0))
        assert isinstance(delta, StatsDelta)
        assert delta.relation == "orders"
        assert delta.old.cardinality == 100.0
        assert delta.new.cardinality == 400.0
        assert delta.cardinality_ratio == 4.0
        # The catalog now resolves to the new statistics.
        assert catalog.lookup("orders").cardinality == 400.0

    def test_payload_is_json_ready(self):
        catalog = make_catalog()
        delta = catalog.update_stats(
            "orders", stats("orders", 400.0, distinct={"a": 400.0, "b": 50.0})
        )
        payload = delta.payload()
        assert payload["relation"] == "orders"
        assert payload["old_cardinality"] == 100.0
        assert payload["new_cardinality"] == 400.0
        assert payload["cardinality_ratio"] == 4.0
        assert payload["distinct_changed"] == ["a"]  # b kept 50.0

    def test_table_lookup_is_case_insensitive(self):
        catalog = make_catalog()
        delta = catalog.update_stats("ORDERS", stats("Orders", 200.0))
        assert delta.cardinality_ratio == 2.0

    def test_unknown_table_raises_key_error(self):
        with pytest.raises(KeyError):
            make_catalog().update_stats("lineitem", stats("lineitem", 1.0))

    def test_mismatched_name_raises_value_error(self):
        with pytest.raises(ValueError):
            make_catalog().update_stats("orders", stats("customer", 1.0))

    def test_zero_old_cardinality_ratio_guard(self):
        catalog = Catalog()
        catalog.register(stats("empty", 0.0))
        delta = catalog.update_stats("empty", stats("empty", 10.0))
        assert delta.cardinality_ratio == float("inf")


class TestDeltaSubscription:
    def test_delta_subscribers_see_the_event(self):
        catalog = make_catalog()
        seen = []
        catalog.subscribe_deltas(seen.append)
        catalog.update_stats("orders", stats("orders", 300.0))
        assert len(seen) == 1
        assert seen[0].relation == "orders"
        assert seen[0].new.cardinality == 300.0

    def test_name_subscribers_are_not_notified(self):
        # update_stats replaces wholesale invalidation; notifying the
        # name channel too would drop the very entries the delta channel
        # is trying to keep servable.
        catalog = make_catalog()
        names = []
        catalog.subscribe(names.append)
        catalog.update_stats("orders", stats("orders", 300.0))
        assert names == []

    def test_raising_subscriber_does_not_starve_others(self):
        catalog = make_catalog()
        seen = []

        def broken(delta):
            raise RuntimeError("subscriber bug")

        catalog.subscribe_deltas(broken)
        catalog.subscribe_deltas(seen.append)
        delta = catalog.update_stats("orders", stats("orders", 300.0))
        assert delta.relation == "orders"  # the update itself succeeded
        assert len(seen) == 1

    def test_unsubscribe_detaches(self):
        catalog = make_catalog()
        seen = []
        unsubscribe = catalog.subscribe_deltas(seen.append)
        unsubscribe()
        catalog.update_stats("orders", stats("orders", 300.0))
        assert seen == []

    def test_unsubscribe_is_one_shot(self):
        # A second call must not detach another subscription that happens
        # to compare equal.
        catalog = make_catalog()
        seen = []
        first = catalog.subscribe_deltas(seen.append)
        first()
        catalog.subscribe_deltas(seen.append)
        first()  # stale handle: must be a no-op now
        catalog.update_stats("orders", stats("orders", 300.0))
        assert len(seen) == 1


class TestCacheDeltaHook:
    def key(self, tag: str) -> PlanCacheKey:
        return PlanCacheKey(fingerprint=tag, snapshot="snap", strategy="ea-prune")

    def test_watch_deltas_marks_stale_instead_of_dropping(self):
        catalog = make_catalog()
        cache = PlanCache(capacity=8)
        cache.watch_deltas(catalog)
        cache.put(self.key("q1"), object(), relations=["orders"])
        cache.put(self.key("q2"), object(), relations=["customer"])

        catalog.update_stats("orders", stats("orders", 400.0))

        # The affected entry is stale but still present and servable;
        # the untouched one stays fresh.
        assert cache.entry_state(self.key("q1")) == STALE
        assert cache.entry_state(self.key("q2")) == FRESH
        assert len(cache) == 2
        assert cache.stale_count() == 1

    def test_unwatch_stops_marking(self):
        catalog = make_catalog()
        cache = PlanCache(capacity=8)
        unwatch = cache.watch_deltas(catalog)
        cache.put(self.key("q1"), object(), relations=["orders"])
        unwatch()
        catalog.update_stats("orders", stats("orders", 400.0))
        assert cache.entry_state(self.key("q1")) == FRESH
