"""Tests for single aggregate calls: evaluation + classification (Sec. 2.1)."""

import pytest

from repro.aggregates import avg, count, count_star, max_, min_, sum_
from repro.aggregates.calls import AggCall, AggKind
from repro.algebra.expressions import Attr, BinOp, Case, Const, IsNull
from repro.algebra.rows import Row
from repro.algebra.values import NULL, is_null


def rows(*values):
    return [Row({"a": v}) for v in values]


class TestEvaluation:
    def test_count_star_counts_everything(self):
        assert count_star().evaluate(rows(1, NULL, 3)) == 3

    def test_count_ignores_nulls(self):
        assert count("a").evaluate(rows(1, NULL, 3)) == 2

    def test_count_distinct(self):
        assert count("a", distinct=True).evaluate(rows(1, 1, 2, NULL)) == 2

    def test_sum(self):
        assert sum_("a").evaluate(rows(1, 2, 3)) == 6

    def test_sum_ignores_nulls(self):
        assert sum_("a").evaluate(rows(1, NULL, 3)) == 4

    def test_sum_empty_is_null(self):
        assert is_null(sum_("a").evaluate([]))

    def test_sum_all_null_is_null(self):
        assert is_null(sum_("a").evaluate(rows(NULL, NULL)))

    def test_sum_distinct(self):
        assert sum_("a", distinct=True).evaluate(rows(1, 1, 2)) == 3

    def test_min_max(self):
        assert min_("a").evaluate(rows(3, 1, 2)) == 1
        assert max_("a").evaluate(rows(3, 1, 2)) == 3

    def test_min_empty_is_null(self):
        assert is_null(min_("a").evaluate([]))

    def test_avg(self):
        assert avg("a").evaluate(rows(1, 2, 3)) == 2

    def test_avg_ignores_nulls(self):
        assert avg("a").evaluate(rows(2, NULL, 4)) == 3

    def test_avg_distinct(self):
        assert avg("a", distinct=True).evaluate(rows(1, 1, 3)) == 2

    def test_aggregate_over_expression(self):
        call = sum_(Attr("a") * Const(2))
        assert call.evaluate(rows(1, 2)) == 6

    def test_scaled_count_expression(self):
        # The ⊗ form: sum(CASE WHEN a IS NULL THEN 0 ELSE c END)
        call = AggCall(AggKind.SUM, Case(IsNull(Attr("a")), Const(0), Attr("c")))
        data = [Row({"a": 1, "c": 3}), Row({"a": NULL, "c": 5})]
        assert call.evaluate(data) == 3


class TestValidation:
    def test_count_star_rejects_argument(self):
        with pytest.raises(ValueError):
            AggCall(AggKind.COUNT_STAR, Attr("a"))

    def test_count_star_rejects_distinct(self):
        with pytest.raises(ValueError):
            AggCall(AggKind.COUNT_STAR, None, distinct=True)

    def test_sum_requires_argument(self):
        with pytest.raises(ValueError):
            AggCall(AggKind.SUM, None)


class TestClassification:
    """Duplicate sensitivity and decomposability tables from Sec. 2.1."""

    @pytest.mark.parametrize(
        "call",
        [min_("a"), max_("a"), sum_("a", distinct=True), count("a", distinct=True), avg("a", distinct=True)],
    )
    def test_duplicate_agnostic(self, call):
        assert call.duplicate_agnostic

    @pytest.mark.parametrize("call", [sum_("a"), count("a"), count_star(), avg("a")])
    def test_duplicate_sensitive(self, call):
        assert call.duplicate_sensitive

    @pytest.mark.parametrize(
        "call", [min_("a"), max_("a"), sum_("a"), count("a"), count_star(), avg("a")]
    )
    def test_decomposable(self, call):
        assert call.decomposable

    @pytest.mark.parametrize(
        "call",
        [sum_("a", distinct=True), count("a", distinct=True), avg("a", distinct=True)],
    )
    def test_not_decomposable(self, call):
        assert not call.decomposable


class TestNullTupleDefaults:
    """F({⊥}) values used in outerjoin default vectors (Sec. 3.1.2)."""

    def test_count_star_on_bottom_is_one(self):
        assert count_star().evaluate_on_null_tuple() == 1

    def test_count_on_bottom_is_zero(self):
        assert count("a").evaluate_on_null_tuple() == 0

    def test_sum_on_bottom_is_null(self):
        assert is_null(sum_("a").evaluate_on_null_tuple())

    def test_min_max_avg_on_bottom_are_null(self):
        assert is_null(min_("a").evaluate_on_null_tuple())
        assert is_null(max_("a").evaluate_on_null_tuple())
        assert is_null(avg("a").evaluate_on_null_tuple())

    def test_scaled_count_on_bottom_is_zero(self):
        call = AggCall(AggKind.SUM, Case(IsNull(Attr("a")), Const(0), Attr("c")))
        assert call.evaluate_on_null_tuple() == 0

    def test_attributes(self):
        assert sum_(BinOp("*", Attr("x"), Attr("y"))).attributes() == frozenset({"x", "y"})
        assert count_star().attributes() == frozenset()
