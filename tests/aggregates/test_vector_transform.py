"""Tests for aggregation vectors: splitting, decomposition, ⊗ scaling."""

import pytest

from repro.aggregates import avg, count, count_star, max_, min_, sum_
from repro.aggregates.calls import AggKind
from repro.aggregates.transform import (
    NotDecomposableError,
    NotScalableError,
    decompose_call,
    decompose_vector,
    normalize_avg,
    scale_call,
    scale_vector,
    single_row_expr,
)
from repro.aggregates.vector import AggItem, AggVector
from repro.algebra.rows import Row
from repro.algebra.values import NULL, is_null


def V(**aggs):
    return AggVector([AggItem(name, call) for name, call in aggs.items()])


class TestVectorBasics:
    def test_names_and_attributes(self):
        vector = V(n=count_star(), s=sum_("x"), m=min_("y"))
        assert vector.names() == ("n", "s", "m")
        assert vector.attributes() == frozenset({"x", "y"})

    def test_concat(self):
        combined = V(a=count_star()).concat(V(b=sum_("x")))
        assert combined.names() == ("a", "b")

    def test_duplicate_names_rejected(self):
        with pytest.raises(ValueError):
            AggVector([AggItem("a", count_star()), AggItem("a", sum_("x"))])

    def test_evaluate(self):
        vector = V(n=count_star(), s=sum_("x"))
        result = vector.evaluate([Row({"x": 1}), Row({"x": 2})])
        assert result == {"n": 2, "s": 3}

    def test_evaluate_on_null_tuple(self):
        vector = V(n=count_star(), s=sum_("x"), c=count("x"))
        result = vector.evaluate_on_null_tuple()
        assert result["n"] == 1
        assert is_null(result["s"])
        assert result["c"] == 0

    def test_flags(self):
        assert V(m=min_("x")).all_duplicate_agnostic
        assert not V(m=min_("x"), s=sum_("x")).all_duplicate_agnostic
        assert V(s=sum_("x")).all_decomposable
        assert not V(s=sum_("x", distinct=True)).all_decomposable


class TestSplitting:
    """Def. 1 — splittability w.r.t. two expressions."""

    def test_clean_split(self):
        vector = V(s1=sum_("l.x"), s2=sum_("r.y"))
        f1, f2 = vector.split({"l.x"}, {"r.y"})
        assert f1.names() == ("s1",)
        assert f2.names() == ("s2",)

    def test_count_star_goes_to_preferred_side(self):
        vector = V(n=count_star())
        f1, f2 = vector.split({"l.x"}, {"r.y"}, star_side=1)
        assert f1.names() == ("n",)
        f1, f2 = vector.split({"l.x"}, {"r.y"}, star_side=2)
        assert f2.names() == ("n",)

    def test_cross_side_aggregate_not_splittable(self):
        from repro.algebra.expressions import Attr, BinOp

        vector = V(s=sum_(BinOp("+", Attr("l.x"), Attr("r.y"))))
        assert vector.split({"l.x"}, {"r.y"}) is None
        assert not vector.splittable({"l.x"}, {"r.y"})

    def test_split_preserves_order_within_sides(self):
        vector = V(a=sum_("l.x"), b=sum_("r.y"), c=min_("l.z"))
        f1, f2 = vector.split({"l.x", "l.z"}, {"r.y"})
        assert f1.names() == ("a", "c")


class TestDecomposition:
    """Def. 2 — inner/outer stages."""

    def test_sum_decomposes_to_sum_of_sums(self):
        inner, outer = decompose_call(sum_("x"), "s1")
        assert inner.kind is AggKind.SUM
        assert outer.kind is AggKind.SUM
        assert outer.attributes() == frozenset({"s1"})

    def test_count_star_decomposes_to_sum_of_counts(self):
        inner, outer = decompose_call(count_star(), "c1")
        assert inner.kind is AggKind.COUNT_STAR
        assert outer.kind is AggKind.SUM

    def test_count_decomposes_to_sum_of_counts(self):
        inner, outer = decompose_call(count("x"), "c1")
        assert inner.kind is AggKind.COUNT
        assert outer.kind is AggKind.SUM

    def test_min_max_decompose_to_themselves(self):
        for factory, kind in ((min_, AggKind.MIN), (max_, AggKind.MAX)):
            inner, outer = decompose_call(factory("x"), "m1")
            assert inner.kind is kind and outer.kind is kind

    def test_distinct_not_decomposable(self):
        with pytest.raises(NotDecomposableError):
            decompose_call(sum_("x", distinct=True), "s1")

    def test_plain_avg_requires_normalisation(self):
        with pytest.raises(NotDecomposableError):
            decompose_call(avg("x"), "a1")

    def test_decompose_vector_round_trip(self):
        """outer(inner(X), inner(Y)) == agg(X ∪ Y) on concrete data."""
        vector = V(n=count_star(), s=sum_("x"), lo=min_("x"), cnt=count("x"))
        dec = decompose_vector(vector)
        x = [Row({"x": v}) for v in (1, 2, NULL)]
        y = [Row({"x": v}) for v in (5, NULL, 7)]
        part_x = Row(dec.inner.evaluate(x))
        part_y = Row(dec.inner.evaluate(y))
        recombined = dec.outer.evaluate([part_x, part_y])
        direct = vector.evaluate(x + y)
        assert recombined == direct

    def test_decomposition_is_repeatable(self):
        """Outer stages must themselves decompose (multi-level pushdown)."""
        vector = V(n=count_star(), s=sum_("x"), lo=min_("x"))
        dec1 = decompose_vector(vector)
        dec2 = decompose_vector(dec1.outer, suffix="''")
        assert dec2.inner.names() == ("n''", "s''", "lo''")


class TestNormalizeAvg:
    def test_avg_becomes_sum_and_count(self):
        norm = normalize_avg(V(m=avg("x")))
        kinds = [item.call.kind for item in norm.vector]
        assert kinds == [AggKind.SUM, AggKind.COUNT]
        assert [name for name, _ in norm.post] == ["m"]

    def test_post_division_reconstructs_avg(self):
        norm = normalize_avg(V(m=avg("x")))
        data = [Row({"x": v}) for v in (2, NULL, 4)]
        partial = Row(norm.vector.evaluate(data))
        (name, expr), = norm.post
        assert expr.eval(partial) == 3

    def test_non_avg_items_pass_through(self):
        norm = normalize_avg(V(s=sum_("x"), m=avg("y"), n=count_star()))
        assert norm.vector.names() == ("s", "m#s", "m#c", "n")
        assert [name for name, _ in norm.post] == ["s", "m", "n"]

    def test_avg_distinct_left_alone(self):
        norm = normalize_avg(V(m=avg("x", distinct=True)))
        assert norm.vector.names() == ("m",)


class TestScaling:
    """The ⊗ operator (Sec. 2.1.3)."""

    def test_agnostic_unchanged(self):
        assert scale_call(min_("x"), ["c"]) == min_("x")
        assert scale_call(sum_("x", distinct=True), ["c"]) == sum_("x", distinct=True)

    def test_empty_count_list_unchanged(self):
        assert scale_call(sum_("x"), []) == sum_("x")

    def test_sum_scaled(self):
        scaled = scale_call(sum_("x"), ["c"])
        data = [Row({"x": 2, "c": 3}), Row({"x": 5, "c": 1})]
        assert scaled.evaluate(data) == 11  # 2*3 + 5*1

    def test_count_star_scaled_to_sum_of_counts(self):
        scaled = scale_call(count_star(), ["c"])
        data = [Row({"c": 3}), Row({"c": 4})]
        assert scaled.evaluate(data) == 7

    def test_count_scaled_respects_nulls(self):
        scaled = scale_call(count("x"), ["c"])
        data = [Row({"x": 1, "c": 3}), Row({"x": NULL, "c": 4})]
        assert scaled.evaluate(data) == 3

    def test_multi_count_product(self):
        scaled = scale_call(sum_("x"), ["c1", "c2"])
        data = [Row({"x": 2, "c1": 3, "c2": 5})]
        assert scaled.evaluate(data) == 30

    def test_avg_scaling_rejected(self):
        with pytest.raises(NotScalableError):
            scale_call(avg("x"), ["c"])

    def test_scale_vector_preserves_names(self):
        vector = V(n=count_star(), s=sum_("x"), lo=min_("x"))
        scaled = scale_vector(vector, ["c"])
        assert scaled.names() == ("n", "s", "lo")

    def test_scaling_matches_duplication(self):
        """f ⊗ c over collapsed rows == f over physically duplicated rows."""
        base = [Row({"x": 2}), Row({"x": 5}), Row({"x": NULL})]
        counts = [3, 1, 4]
        duplicated = [row for row, c in zip(base, counts) for _ in range(c)]
        collapsed = [row.extended({"c": c}) for row, c in zip(base, counts)]
        for call in (sum_("x"), count("x"), count_star(), min_("x"), max_("x")):
            scaled = scale_call(call, ["c"])
            assert scaled.evaluate(collapsed) == call.evaluate(duplicated), repr(call)


class TestSingleRowExpr:
    """Eqv. 42 building block: f({t}) as a scalar expression."""

    def test_count_star_is_one(self):
        expr = single_row_expr(count_star())
        assert expr.eval(Row({})) == 1

    def test_count_checks_null(self):
        expr = single_row_expr(count("x"))
        assert expr.eval(Row({"x": 5})) == 1
        assert expr.eval(Row({"x": NULL})) == 0

    def test_sum_min_max_avg_pass_value(self):
        for factory in (sum_, min_, max_, avg):
            expr = single_row_expr(factory("x"))
            assert expr.eval(Row({"x": 9})) == 9
